(** Domain-based worker pool for the evaluation loop.

    The DSE sweep is embarrassingly parallel — every (variant, device,
    form) point lowers and costs independently — but variants are
    *uneven*: a 16-lane variant elaborates an order of magnitude more IR
    than the baseline pipe. A static block partition would leave most
    domains idle behind the one that drew the widest variants, so [map]
    feeds workers from a shared deque of small index chunks: each worker
    pops the next chunk when it runs dry, which bounds the straggler
    penalty by one chunk rather than one block.

    Two entry points share the machinery:

    - [map] keeps exactly sequential-equivalent semantics: results in
      input order, the first exception re-raised after all domains are
      joined, [jobs = 1] short-circuiting to [List.map].
    - [map_result] is the resilient variant: every item yields a
      [('b, task_error) result], failed items never abort the map, and
      each item runs under an optional cooperative deadline with a
      bounded retry + exponential backoff policy. Timeouts are
      *cooperative* (see {!Task}): a task observes its deadline at
      [Task.check]/[Task.sleep] safepoints — domains cannot be killed.

    Shutdown is unconditional: workers are joined through {!join_all},
    which joins every domain even when an earlier join re-raises a task
    exception, so no domain is ever orphaned (and a spawn failure
    mid-fanout aborts and joins the domains already running). *)

type t = { pool_jobs : int }

(** Upper bound used by [default_jobs]: going past the physical core
    count only adds scheduling noise to a CPU-bound sweep. *)
let max_sensible_jobs = 64

let default_jobs () =
  min max_sensible_jobs (Domain.recommended_domain_count ())

let create ?jobs () =
  let j = match jobs with Some j -> j | None -> default_jobs () in
  { pool_jobs = max 1 j }

let jobs t = t.pool_jobs

(* ------------------------------------------------------------------ *)
(* Nested-dispatch guard                                                *)
(* ------------------------------------------------------------------ *)

(* Set while a domain is executing pool work. A [map] issued from inside
   a worker (e.g. a parallel placement running within a pooled point
   evaluation) must not fan out again: the nested spawn would
   oversubscribe the machine jobs-fold and, once pools hold queues or
   other shared resources, deadlock against the dispatch that is waiting
   on this very item. Nested maps therefore degrade to the sequential
   short-circuit on the worker's own domain. *)
let in_worker_key : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let inside_worker () = Domain.DLS.get in_worker_key

let as_worker f =
  Domain.DLS.set in_worker_key true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set in_worker_key false) f

(* ------------------------------------------------------------------ *)
(* Errors and retry policy                                              *)
(* ------------------------------------------------------------------ *)

type task_error = {
  te_exn : exn;
  te_backtrace : Printexc.raw_backtrace;
  te_attempts : int;
  te_elapsed_s : float;
  te_timed_out : bool;
}

let pp_task_error ppf te =
  Format.fprintf ppf "%s after %d attempt%s (%.3f s)%s"
    (Printexc.to_string te.te_exn)
    te.te_attempts
    (if te.te_attempts = 1 then "" else "s")
    te.te_elapsed_s
    (if te.te_timed_out then " [timed out]" else "")

type retry = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  jitter : float;
}

let no_retry =
  { max_attempts = 1; base_delay_s = 0.0; max_delay_s = 0.0; jitter = 0.0 }

let default_retry =
  { max_attempts = 3; base_delay_s = 0.05; max_delay_s = 2.0; jitter = 0.5 }

(* Exponential backoff with *deterministic* jitter: the jitter term is a
   hash fraction of (item index, attempt), so concurrent retries still
   decorrelate but a rerun of the same workload sleeps the exact same
   schedule — which is what lets tests assert it via a virtual clock. *)
let backoff_delay retry ~index ~attempt =
  let exp_d = retry.base_delay_s *. (2.0 ** float_of_int (attempt - 1)) in
  let d = Float.min retry.max_delay_s exp_d in
  let j =
    if retry.jitter <= 0.0 then 0.0
    else
      let h = Hashtbl.hash (index, attempt, "jitter") mod 1000 in
      d *. retry.jitter *. (float_of_int h /. 1000.0)
  in
  d +. j

(* ------------------------------------------------------------------ *)
(* Work deque: index chunks [lo, hi), popped front-first under a lock.  *)
(* ------------------------------------------------------------------ *)

type deque = {
  dq_mutex : Mutex.t;
  mutable dq_chunks : (int * int) list;
}

let deque_of ~n ~workers =
  (* Small chunks (≈4 per worker) so an expensive tail item cannot hold
     the whole sweep hostage; at least 1 so tiny inputs still terminate. *)
  let chunk = max 1 (n / (workers * 4)) in
  let rec build lo acc =
    if lo >= n then List.rev acc
    else build (lo + chunk) ((lo, min n (lo + chunk)) :: acc)
  in
  { dq_mutex = Mutex.create (); dq_chunks = build 0 [] }

let deque_pop dq =
  Mutex.lock dq.dq_mutex;
  let r =
    match dq.dq_chunks with
    | [] -> None
    | c :: tl ->
        dq.dq_chunks <- tl;
        Some c
  in
  Mutex.unlock dq.dq_mutex;
  r

(* ------------------------------------------------------------------ *)
(* Shutdown: join everything, always                                    *)
(* ------------------------------------------------------------------ *)

(** Join every domain even when an earlier join re-raises (a task
    exception that escaped a worker body); the first such exception is
    re-raised only after the whole list is joined, so no domain is
    orphaned behind a propagating failure. *)
let join_all domains =
  let first = ref None in
  List.iter
    (fun d ->
      try Domain.join d
      with e -> (
        let bt = Printexc.get_raw_backtrace () in
        match !first with None -> first := Some (e, bt) | Some _ -> ()))
    domains;
  match !first with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(** Spawn [n] workers; if a spawn fails mid-fanout (resource limits),
    flip [abort] so already-running cooperative workers wind down, join
    them, and re-raise — never leaks the partial fleet. *)
let spawn_all ?abort n worker =
  let rec go i acc =
    if i >= n then List.rev acc
    else
      match Domain.spawn worker with
      | d -> go (i + 1) (d :: acc)
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Option.iter (fun a -> Atomic.set a true) abort;
          (try join_all (List.rev acc) with _ -> ());
          Printexc.raise_with_backtrace e bt
  in
  go 0 []

(* ------------------------------------------------------------------ *)
(* map                                                                  *)
(* ------------------------------------------------------------------ *)

type 'b slot = Pending | Done of 'b

(** [map t f xs] — [List.map f xs], fanned out over [jobs t] domains.
    Order-preserving; re-raises the first worker exception. *)
let map (t : t) (f : 'a -> 'b) (xs : 'a list) : 'b list =
  let n = List.length xs in
  (* Dispatch accounting is per call, published on the sequential
     short-circuit too: exec.pool.* must be a pure function of the
     workload, not of how many cores the machine happens to have
     (perf_guard gates these counters on exact equality). *)
  Tytra_telemetry.Metrics.incr "exec.pool.maps";
  Tytra_telemetry.Metrics.add "exec.pool.items" (float_of_int n);
  if t.pool_jobs <= 1 || n <= 1 || inside_worker () then List.map f xs
  else begin
    let workers = min t.pool_jobs n in
    let input = Array.of_list xs in
    let results = Array.make n Pending in
    let dq = deque_of ~n ~workers in
    let failure_mutex = Mutex.create () in
    let failure : (exn * Printexc.raw_backtrace) option ref = ref None in
    let failed = Atomic.make false in
    let record_failure e bt =
      Mutex.lock failure_mutex;
      if !failure = None then failure := Some (e, bt);
      Mutex.unlock failure_mutex;
      Atomic.set failed true
    in
    let worker () =
      let rec drain () =
        if Atomic.get failed then ()
        else
          match deque_pop dq with
          | None -> ()
          | Some (lo, hi) ->
              (try
                 for i = lo to hi - 1 do
                   if not (Atomic.get failed) then
                     results.(i) <-
                       (* Arm the abort flag as a cooperative context:
                          tasks that poll [Task.check] unwind promptly
                          once another worker has recorded a failure. *)
                       Done
                         (Task.with_context ~abort:failed (fun () ->
                              f input.(i)))
                 done
               with
              | Task.Cancelled ->
                  (* Unwound because another worker already failed — not
                     a failure of this item. *)
                  ()
              | e -> record_failure e (Printexc.get_raw_backtrace ()));
              drain ()
      in
      as_worker drain
    in
    let domains = spawn_all ~abort:failed workers worker in
    join_all domains;
    match !failure with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None ->
        Array.to_list results
        |> List.map (function
             | Done v -> v
             | Pending ->
                 (* unreachable: every chunk was drained and no failure
                    was recorded *)
                 invalid_arg "Pool.map: missing result")
  end

(* ------------------------------------------------------------------ *)
(* map_result: deadlines, retries, per-item errors                      *)
(* ------------------------------------------------------------------ *)

(** Run one item through the attempt loop: arm the deadline, let the
    fault harness have its say, retry transient failures with backoff.
    [index] is the item's position (keys the jitter); [id] its global
    fault-schedule identity. *)
let run_item ~retry ~deadline_s ~index ~id f x =
  let start = Task.now () in
  let rec go attempt =
    match
      Task.with_context ?deadline_s (fun () ->
          Faultgen.inject ~id ~attempt;
          let r = f x in
          (* Post-hoc deadline check: a task that never polls still
             reports as timed out when it finally returns late. *)
          Task.check ();
          r)
    with
    | r -> Ok r
    | exception e -> (
        let bt = Printexc.get_raw_backtrace () in
        let timed_out = match e with Task.Timeout _ -> true | _ -> false in
        if timed_out then Tytra_telemetry.Metrics.incr "exec.task.timeouts";
        match e with
        | Task.Cancelled ->
            (* The surrounding map was aborted: report, never retry. *)
            Tytra_telemetry.Metrics.incr "exec.task.failures";
            Error
              {
                te_exn = e;
                te_backtrace = bt;
                te_attempts = attempt;
                te_elapsed_s = Task.now () -. start;
                te_timed_out = false;
              }
        | _ when attempt < retry.max_attempts ->
            Tytra_telemetry.Metrics.incr "exec.task.retries";
            Task.sleep (backoff_delay retry ~index ~attempt);
            go (attempt + 1)
        | _ ->
            Tytra_telemetry.Metrics.incr "exec.task.failures";
            Error
              {
                te_exn = e;
                te_backtrace = bt;
                te_attempts = attempt;
                te_elapsed_s = Task.now () -. start;
                te_timed_out = timed_out;
              })
  in
  go 1

(** [map_result t ?retry ?deadline_s f xs] — like [map], but resilient:
    every item is attempted (no early abort), each under its own
    cooperative deadline and retry budget, and the per-item outcome
    comes back as a [result]. Order-preserving; never raises from task
    failures. *)
let map_result (t : t) ?(retry = no_retry) ?deadline_s (f : 'a -> 'b)
    (xs : 'a list) : ('b, task_error) result list =
  let n = List.length xs in
  (* Fault-schedule ids are drawn here, at submission time and in input
     order, so the schedule is independent of worker interleaving. *)
  let ids = Array.make n 0 in
  for i = 0 to n - 1 do
    ids.(i) <- Faultgen.next_id ()
  done;
  let run i x = run_item ~retry ~deadline_s ~index:i ~id:ids.(i) f x in
  let out =
    if t.pool_jobs <= 1 || n <= 1 || inside_worker () then List.mapi run xs
    else begin
      let workers = min t.pool_jobs n in
      let input = Array.of_list xs in
      let results = Array.make n Pending in
      let dq = deque_of ~n ~workers in
      let worker () =
        let rec drain () =
          match deque_pop dq with
          | None -> ()
          | Some (lo, hi) ->
              for i = lo to hi - 1 do
                results.(i) <- Done (run i input.(i))
              done;
              drain ()
        in
        as_worker drain
      in
      let domains = spawn_all workers worker in
      join_all domains;
      Array.to_list results
      |> List.map (function
           | Done r -> r
           | Pending -> invalid_arg "Pool.map_result: missing result")
    end
  in
  Tytra_telemetry.Metrics.incr "exec.pool.maps";
  Tytra_telemetry.Metrics.add "exec.pool.items" (float_of_int n);
  out

(** [with_pool ?jobs f] — scoped pool; today a pool holds no OS
    resources, but callers should not rely on that. *)
let with_pool ?jobs f = f (create ?jobs ())
