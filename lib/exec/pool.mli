(** Domain-based worker pool with order-preserving [map].

    Built for the DSE evaluation loop: work items are uneven (a 16-lane
    variant costs far more to lower than the baseline pipe), so items are
    fed to workers from a shared deque of small chunks rather than a
    static partition. Two entry points: {!map} with exact sequential
    semantics (first exception propagates), and the resilient
    {!map_result} (per-item results, cooperative deadlines, bounded
    retry). See the implementation notes in [pool.ml]. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ?jobs ()] — a pool of [jobs] workers (default
    {!default_jobs}; clamped to at least 1). A pool is a configuration
    value: domains are spawned per {!map} call and joined before it
    returns, so a pool never outlives its work. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], capped at a sensible bound. *)

val jobs : t -> int
(** Worker count this pool was created with. *)

val inside_worker : unit -> bool
(** [true] while the calling domain is executing pool work. A {!map} or
    {!map_result} issued from inside a worker does not fan out again —
    it degrades to the sequential short-circuit on the worker's own
    domain, so nested dispatch (a parallel sub-computation running
    within a pooled item) can never oversubscribe the machine or
    deadlock against the dispatch waiting on that item. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] — [List.map f xs] evaluated on [jobs t] domains.

    - Results are in input order regardless of completion order.
    - If any application of [f] raises, the first such exception is
      re-raised (with its backtrace) after {e all} workers have been
      joined (no orphaned domains); remaining work is abandoned
      promptly, and tasks that poll [Task.check] unwind early.
    - With [jobs t = 1] (or fewer than two items) this is exactly
      [List.map f xs] on the calling domain. *)

(** Why one task failed: the exception and backtrace of the {e last}
    attempt, how many attempts were made, wall time across all of them,
    and whether the final failure was a cooperative timeout. *)
type task_error = {
  te_exn : exn;
  te_backtrace : Printexc.raw_backtrace;
  te_attempts : int;
  te_elapsed_s : float;
  te_timed_out : bool;
}

val pp_task_error : Format.formatter -> task_error -> unit

(** Bounded-retry policy: up to [max_attempts] tries per item, sleeping
    [min max_delay_s (base_delay_s * 2^(attempt-1))] between tries plus
    a deterministic jitter fraction ([jitter] of the delay, keyed by
    item index and attempt — reruns sleep the same schedule). *)
type retry = {
  max_attempts : int;
  base_delay_s : float;
  max_delay_s : float;
  jitter : float;
}

val no_retry : retry
(** Single attempt, no backoff. *)

val default_retry : retry
(** 3 attempts, 50 ms base delay doubling to a 2 s cap, 50% jitter. *)

val map_result :
  t ->
  ?retry:retry ->
  ?deadline_s:float ->
  ('a -> 'b) ->
  'a list ->
  ('b, task_error) result list
(** [map_result t ?retry ?deadline_s f xs] — resilient map: every item
    is attempted and its outcome returned in input order; a failed item
    never aborts the others.

    - [deadline_s] arms a {e cooperative} per-attempt deadline: [f]
      observes it at [Task.check]/[Task.sleep] safepoints and a task
      that never polls is flagged [Timeout] only when it returns.
    - [retry] (default {!no_retry}) bounds attempts per item; anything
      except [Task.Cancelled] is retried until the budget is spent.
    - Telemetry: [exec.task.retries] / [exec.task.timeouts] /
      [exec.task.failures].
    - With [jobs t = 1] items run sequentially on the calling domain
      under the same attempt loop. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ?jobs f] — run [f] with a freshly created pool. *)
