(** Domain-based worker pool with order-preserving [map].

    Built for the DSE evaluation loop: work items are uneven (a 16-lane
    variant costs far more to lower than the baseline pipe), so items are
    fed to workers from a shared deque of small chunks rather than a
    static partition. See the implementation notes in [pool.ml]. *)

type t

val create : ?jobs:int -> unit -> t
(** [create ?jobs ()] — a pool of [jobs] workers (default
    {!default_jobs}; clamped to at least 1). A pool is a configuration
    value: domains are spawned per {!map} call and joined before it
    returns, so a pool never outlives its work. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], capped at a sensible bound. *)

val jobs : t -> int
(** Worker count this pool was created with. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] — [List.map f xs] evaluated on [jobs t] domains.

    - Results are in input order regardless of completion order.
    - If any application of [f] raises, the first such exception is
      re-raised (with its backtrace) after all workers have been
      joined; remaining work is abandoned promptly.
    - With [jobs t = 1] (or fewer than two items) this is exactly
      [List.map f xs] on the calling domain. *)

val with_pool : ?jobs:int -> (t -> 'a) -> 'a
(** [with_pool ?jobs f] — run [f] with a freshly created pool. *)
