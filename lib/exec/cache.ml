(** Content-keyed memoization cache for cost evaluations.

    Repeated sweeps — guided search revisiting lane counts, cross-device
    exploration, the E1–E7 bench harness — re-lower and re-cost identical
    (program, variant, device, calibration, form, nki) points from
    scratch. Each evaluation is pure, so its result is a function of a
    content digest of those inputs: this module is the bounded LRU that
    makes the second sweep free.

    Domain-safe: every access takes the cache mutex. The value thunk of
    {!find_or_add} runs *outside* the lock, so a slow evaluation never
    blocks other domains; two domains racing on the same missing key may
    both compute it (the second insert wins harmlessly — values are
    deterministic by construction of the key).

    Hit/miss/eviction counts are kept unconditionally (for tests and for
    {!stats}) and mirrored into {!Tytra_telemetry.Metrics} under
    [<prefix>.hits] / [<prefix>.misses] / [<prefix>.evictions] when a
    [metrics_prefix] is given. *)

(* Doubly-linked LRU list: front = most recently used. *)
type ('v) node = {
  nd_key : string;
  mutable nd_value : 'v;
  mutable nd_prev : 'v node option;  (* towards the front *)
  mutable nd_next : 'v node option;  (* towards the back *)
}

type 'v t = {
  mutex : Mutex.t;
  table : (string, 'v node) Hashtbl.t;
  capacity : int;
  metrics_prefix : string option;
  mutable front : 'v node option;
  mutable back : 'v node option;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { st_hits : int; st_misses : int; st_evictions : int; st_size : int }

let create ?metrics_prefix ~capacity () =
  {
    mutex = Mutex.create ();
    table = Hashtbl.create (max 16 (min capacity 4096));
    capacity = max 1 capacity;
    metrics_prefix;
    front = None;
    back = None;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let capacity t = t.capacity
let length t =
  Mutex.lock t.mutex;
  let n = Hashtbl.length t.table in
  Mutex.unlock t.mutex;
  n

(* ---- intrusive list plumbing (call with the mutex held) ---- *)

let unlink t nd =
  (match nd.nd_prev with
  | Some p -> p.nd_next <- nd.nd_next
  | None -> t.front <- nd.nd_next);
  (match nd.nd_next with
  | Some nx -> nx.nd_prev <- nd.nd_prev
  | None -> t.back <- nd.nd_prev);
  nd.nd_prev <- None;
  nd.nd_next <- None

let push_front t nd =
  nd.nd_prev <- None;
  nd.nd_next <- t.front;
  (match t.front with Some f -> f.nd_prev <- Some nd | None -> t.back <- Some nd);
  t.front <- Some nd

let touch t nd =
  if t.front != Some nd then begin
    unlink t nd;
    push_front t nd
  end

let evict_lru t =
  match t.back with
  | None -> ()
  | Some nd ->
      unlink t nd;
      Hashtbl.remove t.table nd.nd_key;
      t.evictions <- t.evictions + 1;
      Option.iter
        (fun p -> Tytra_telemetry.Metrics.incr (p ^ ".evictions"))
        t.metrics_prefix

let count_hit t =
  t.hits <- t.hits + 1;
  Option.iter (fun p -> Tytra_telemetry.Metrics.incr (p ^ ".hits")) t.metrics_prefix

let count_miss t =
  t.misses <- t.misses + 1;
  Option.iter (fun p -> Tytra_telemetry.Metrics.incr (p ^ ".misses")) t.metrics_prefix

(* ---- public operations ---- *)

let find t ~key =
  Mutex.lock t.mutex;
  let r =
    match Hashtbl.find_opt t.table key with
    | Some nd ->
        touch t nd;
        count_hit t;
        Some nd.nd_value
    | None ->
        count_miss t;
        None
  in
  Mutex.unlock t.mutex;
  r

let add t ~key value =
  Mutex.lock t.mutex;
  (match Hashtbl.find_opt t.table key with
  | Some nd ->
      nd.nd_value <- value;
      touch t nd
  | None ->
      let nd = { nd_key = key; nd_value = value; nd_prev = None; nd_next = None } in
      Hashtbl.replace t.table key nd;
      push_front t nd;
      if Hashtbl.length t.table > t.capacity then evict_lru t);
  Mutex.unlock t.mutex

let find_or_add t ~key f =
  match find t ~key with
  | Some v -> v
  | None ->
      let v = f () in
      add t ~key v;
      v

let clear t =
  Mutex.lock t.mutex;
  Hashtbl.reset t.table;
  t.front <- None;
  t.back <- None;
  Mutex.unlock t.mutex

let reset_stats t =
  Mutex.lock t.mutex;
  t.hits <- 0;
  t.misses <- 0;
  t.evictions <- 0;
  Mutex.unlock t.mutex

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      st_hits = t.hits;
      st_misses = t.misses;
      st_evictions = t.evictions;
      st_size = Hashtbl.length t.table;
    }
  in
  Mutex.unlock t.mutex;
  s

let hit_rate t =
  let s = stats t in
  let total = s.st_hits + s.st_misses in
  if total = 0 then 0.0 else float_of_int s.st_hits /. float_of_int total

(** [digest_marshal v] — content digest of a pure-data value via its
    marshalled bytes. Sound as a cache key exactly when [v] contains no
    closures, custom blocks or mutable state observed after keying —
    i.e. for plain algebraic data (IR designs, cost-model inputs,
    calibrations). *)
let digest_marshal (v : 'a) : string =
  Digest.to_hex (Digest.string (Marshal.to_string v []))

(** [digest_key parts] — a collision-resistant key from heterogeneous
    components. Parts are length-prefixed before hashing so that
    ["ab"; "c"] and ["a"; "bc"] cannot collide. *)
let digest_key (parts : string list) : string =
  let b = Buffer.create 64 in
  List.iter
    (fun p ->
      Buffer.add_string b (string_of_int (String.length p));
      Buffer.add_char b ':';
      Buffer.add_string b p)
    parts;
  Digest.to_hex (Digest.string (Buffer.contents b))
