(** Cooperative per-task deadlines, cancellation, and injectable time.

    See [task.ml] for the cooperative contract: deadlines interrupt a
    task only at {!check}/{!sleep} safepoints — OCaml domains cannot be
    killed from the outside. *)

exception Timeout of float
(** [Timeout allotted_s] — the task ran past its cooperative deadline. *)

exception Cancelled
(** The surrounding pool map was aborted; the task should unwind. *)

val now : unit -> float
(** Current time from the installed clock (default [Unix.gettimeofday]). *)

val set_clock : (unit -> float) -> unit
val set_sleep : (float -> unit) -> unit

val with_hooks :
  ?clock:(unit -> float) -> ?sleep:(float -> unit) -> (unit -> 'a) -> 'a
(** Run with the given clock/sleep installed, restoring the previous
    hooks afterwards. A virtual-time test installs a clock that a fake
    sleep advances, making backoff schedules assertable without waiting. *)

val check : unit -> unit
(** Raise {!Cancelled} if the surrounding map was aborted, {!Timeout} if
    the current task's deadline passed; no-op outside a task context.
    Long task bodies call this at safepoints. *)

val with_context :
  ?deadline_s:float -> ?abort:bool Atomic.t -> (unit -> 'a) -> 'a
(** Arm a task context for the duration of the callback: {!check} inside
    it observes the deadline and the abort flag. Contexts nest. *)

val sleep : float -> unit
(** Deadline-polling sleep: raises {!Timeout}/{!Cancelled} promptly when
    the context says to stop instead of sleeping through it. *)
