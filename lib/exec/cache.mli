(** Bounded, domain-safe LRU cache keyed by content digests.

    Memoizes pure evaluations (lower + cost of one design point) across
    repeated sweeps. See [cache.ml] for the concurrency contract. *)

type 'v t

val create : ?metrics_prefix:string -> capacity:int -> unit -> 'v t
(** [create ?metrics_prefix ~capacity ()] — an empty cache holding at
    most [capacity] entries (clamped to ≥ 1); least-recently-used
    entries are evicted past that. When [metrics_prefix] is given,
    hit/miss/eviction counts are also published as telemetry counters
    [<prefix>.hits], [<prefix>.misses], [<prefix>.evictions]. *)

val capacity : 'v t -> int
val length : 'v t -> int

val find : 'v t -> key:string -> 'v option
(** Lookup; counts a hit or a miss and refreshes LRU order on hit. *)

val add : 'v t -> key:string -> 'v -> unit
(** Insert or overwrite; evicts the LRU entry when over capacity. *)

val find_or_add : 'v t -> key:string -> (unit -> 'v) -> 'v
(** [find_or_add t ~key f] — cached value for [key], computing and
    inserting [f ()] on a miss. [f] runs outside the cache lock; under
    a concurrent miss on the same key [f] may run more than once. *)

val clear : 'v t -> unit
(** Drop all entries (statistics are kept; see {!reset_stats}). *)

type stats = {
  st_hits : int;
  st_misses : int;
  st_evictions : int;
  st_size : int;
}

val stats : 'v t -> stats
val reset_stats : 'v t -> unit

val hit_rate : 'v t -> float
(** hits / (hits + misses), or 0 before any lookup. *)

val digest_key : string list -> string
(** Collision-resistant hex digest of a list of key components
    (length-prefixed, so component boundaries cannot alias). *)

val digest_marshal : 'a -> string
(** Content digest of a pure-data value (via [Marshal]). Use for
    structural keys over IR values, cost-model inputs or calibrations;
    unsound for values containing closures or mutable state that changes
    after keying. *)
