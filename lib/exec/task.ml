(** Per-task execution context: cooperative deadlines and cancellation.

    OCaml domains cannot be killed from the outside, so a "timeout" here
    is a *cooperative* contract: the pool arms a per-task deadline before
    invoking the task body, and any code that wants to be interruptible
    polls {!check} (directly, or transitively through {!sleep}). A task
    that never polls runs to completion and is flagged as timed out only
    when it returns — the deadline still bounds how long its *result* is
    trusted, not how long the domain spins.

    The wall clock and the sleeping primitive are injectable so that
    retry/backoff behaviour is deterministic under test: a test installs
    a virtual clock and a recording sleep, and the exact backoff schedule
    becomes assertable without wall-clock waits. *)

exception Timeout of float
(** [Timeout allotted_s] — the task ran past its cooperative deadline. *)

exception Cancelled
(** The surrounding pool map was aborted; the task should unwind. *)

(* ---- injectable clock and sleep ---- *)

let clock_ref = ref Unix.gettimeofday
let sleep_ref = ref (fun s -> if s > 0.0 then Unix.sleepf s)

let now () = !clock_ref ()
let set_clock f = clock_ref := f
let set_sleep f = sleep_ref := f

(** [with_hooks ?clock ?sleep f] — run [f] with the given clock/sleep
    installed, restoring the previous hooks afterwards (test scaffolding;
    exception-safe). *)
let with_hooks ?clock ?sleep f =
  let c0 = !clock_ref and s0 = !sleep_ref in
  Option.iter (fun c -> clock_ref := c) clock;
  Option.iter (fun s -> sleep_ref := s) sleep;
  Fun.protect
    ~finally:(fun () ->
      clock_ref := c0;
      sleep_ref := s0)
    f

(* ---- per-domain task context ---- *)

type ctx = {
  cx_deadline : float option;  (* absolute clock value *)
  cx_allotted : float;         (* deadline_s as given, for the exception *)
  cx_abort : bool Atomic.t option;
}

let dls : ctx option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

(** [check ()] — raise {!Cancelled} if the surrounding map was aborted,
    {!Timeout} if the current task's deadline has passed; a no-op outside
    any task context. Long-running task bodies should call this at
    convenient safepoints to honour deadlines and cancellation. *)
let check () =
  match Domain.DLS.get dls with
  | None -> ()
  | Some cx -> (
      (match cx.cx_abort with
      | Some a when Atomic.get a -> raise Cancelled
      | _ -> ());
      match cx.cx_deadline with
      | Some dl when now () > dl -> raise (Timeout cx.cx_allotted)
      | _ -> ())

(** [with_context ?deadline_s ?abort f] — run [f] with a task context
    armed: {!check} inside [f] observes the deadline and the abort flag.
    Contexts nest; the previous one is restored on exit. *)
let with_context ?deadline_s ?abort f =
  let prev = Domain.DLS.get dls in
  let cx =
    {
      cx_deadline = Option.map (fun d -> now () +. d) deadline_s;
      cx_allotted = Option.value deadline_s ~default:Float.infinity;
      cx_abort = abort;
    }
  in
  Domain.DLS.set dls (Some cx);
  Fun.protect ~finally:(fun () -> Domain.DLS.set dls prev) f

(* Poll granularity of the cooperative sleep: small enough that an
   injected delay notices its deadline promptly, large enough not to
   busy-wait. *)
let sleep_quantum_s = 0.05

(** [sleep d] — sleep for [d] seconds in deadline-polling increments:
    raises {!Timeout}/{!Cancelled} promptly when a context says to stop
    instead of sleeping through it. Uses the injectable sleep hook, so a
    virtual-time test pays no wall-clock cost. *)
let sleep d =
  let deadline = now () +. d in
  let rec go () =
    check ();
    let remaining = deadline -. now () in
    if remaining > 0.0 then begin
      !sleep_ref (Float.min sleep_quantum_s remaining);
      go ()
    end
  in
  go ()
