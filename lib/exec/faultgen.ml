(** Deterministic fault injection for the execution layer.

    Tests, CI and the bench harness need to drive every failure path of
    the resilient pool — transient task failures, hung tasks, a process
    killed mid-sweep — *reproducibly*. This module injects those faults
    from a seeded schedule keyed by a global task index: the [n]-th task
    submitted through {!Pool.map_result} observes the same fate in every
    run with the same spec, regardless of which domain executes it or in
    what order chunks are drained.

    The harness is disabled unless a spec is installed — either
    programmatically ({!install}, {!with_spec}) or via the
    [TYTRA_FAULT_SPEC] environment variable, e.g.

    {v TYTRA_FAULT_SPEC="seed=42,fail=0.1,timeout_at=3:11,delay_s=30" v}

    Schedule semantics, applied by {!inject} at the top of every task
    attempt:

    - [crash_at=N] — task [N] SIGKILLs the whole process (simulating a
      machine loss between checkpoints); unconditional, ignores retries.
    - [timeout_at=I:J:…] — the listed tasks sleep [delay_s] seconds
      cooperatively, so an armed deadline converts the delay into
      {!Task.Timeout}.
    - [fail_at=I:J:…] and [fail=P] — the listed tasks, plus a seeded
      pseudo-random fraction [P] of all tasks, raise
      {!Injected_failure}.
    - Failures and timeouts fire only while [attempt <= fail_attempts]
      (default 1): first attempts fail, retries succeed — which is what
      lets CI assert that a fault-injected sweep converges to the clean
      run's selection. *)

exception Injected_failure of int
(** [Injected_failure id] — the scheduled failure of task [id]. *)

type spec = {
  fs_seed : int;  (** seeds the pseudo-random failure selection *)
  fs_fail : float;  (** fraction of tasks that fail, in [0, 1] *)
  fs_fail_attempts : int;
      (** inject failures/timeouts only while [attempt <= this] *)
  fs_fail_at : int list;  (** explicit task ids that fail *)
  fs_timeout_at : int list;  (** explicit task ids that hang *)
  fs_delay_s : float;  (** how long a hung task sleeps *)
  fs_crash_at : int option;  (** task id that SIGKILLs the process *)
}

let default =
  {
    fs_seed = 0;
    fs_fail = 0.0;
    fs_fail_attempts = 1;
    fs_fail_at = [];
    fs_timeout_at = [];
    fs_delay_s = 30.0;
    fs_crash_at = None;
  }

(* ---- spec parsing: "key=value,key=value"; lists are colon-separated *)

let parse_int_list s =
  String.split_on_char ':' s
  |> List.filter (fun f -> f <> "")
  |> List.map int_of_string

let parse s =
  try
    let spec =
      String.split_on_char ',' s
      |> List.filter (fun f -> String.trim f <> "")
      |> List.fold_left
           (fun sp field ->
             match String.index_opt field '=' with
             | None -> failwith (Printf.sprintf "field %S has no '='" field)
             | Some i ->
                 let k = String.trim (String.sub field 0 i) in
                 let v =
                   String.trim
                     (String.sub field (i + 1) (String.length field - i - 1))
                 in
                 (match k with
                 | "seed" -> { sp with fs_seed = int_of_string v }
                 | "fail" ->
                     let p = float_of_string v in
                     if p < 0.0 || p > 1.0 then
                       failwith "fail must be in [0, 1]";
                     { sp with fs_fail = p }
                 | "fail_attempts" ->
                     { sp with fs_fail_attempts = int_of_string v }
                 | "fail_at" -> { sp with fs_fail_at = parse_int_list v }
                 | "timeout_at" ->
                     { sp with fs_timeout_at = parse_int_list v }
                 | "delay_s" -> { sp with fs_delay_s = float_of_string v }
                 | "crash_at" ->
                     { sp with fs_crash_at = Some (int_of_string v) }
                 | _ -> failwith (Printf.sprintf "unknown key %S" k)))
           default
    in
    Ok spec
  with
  | Failure msg -> Error (Printf.sprintf "bad fault spec %S: %s" s msg)
  | _ -> Error (Printf.sprintf "bad fault spec %S" s)

let to_string sp =
  let b = Buffer.create 64 in
  let add fmt = Printf.ksprintf (fun s ->
      if Buffer.length b > 0 then Buffer.add_char b ',';
      Buffer.add_string b s) fmt in
  if sp.fs_seed <> 0 then add "seed=%d" sp.fs_seed;
  if sp.fs_fail > 0.0 then add "fail=%g" sp.fs_fail;
  if sp.fs_fail_attempts <> 1 then add "fail_attempts=%d" sp.fs_fail_attempts;
  if sp.fs_fail_at <> [] then
    add "fail_at=%s"
      (String.concat ":" (List.map string_of_int sp.fs_fail_at));
  if sp.fs_timeout_at <> [] then
    add "timeout_at=%s"
      (String.concat ":" (List.map string_of_int sp.fs_timeout_at));
  if sp.fs_delay_s <> default.fs_delay_s then add "delay_s=%g" sp.fs_delay_s;
  Option.iter (fun n -> add "crash_at=%d" n) sp.fs_crash_at;
  Buffer.contents b

(* ---- installed spec ---- *)

let spec_ref : spec option ref =
  ref
    (match Sys.getenv_opt "TYTRA_FAULT_SPEC" with
    | None | Some "" -> None
    | Some s -> (
        match parse s with
        | Ok sp -> Some sp
        | Error msg ->
            prerr_endline ("warning: TYTRA_FAULT_SPEC ignored: " ^ msg);
            None))

let installed () = !spec_ref
let install sp = spec_ref := sp

let with_spec sp f =
  let prev = !spec_ref in
  spec_ref := sp;
  Fun.protect ~finally:(fun () -> spec_ref := prev) f

(* ---- task identity ---- *)

(* One process-wide counter so the schedule is stable across pools and
   independent of domain interleaving: ids are assigned at submission
   time, before any work fans out. *)
let counter = Atomic.make 0
let next_id () = Atomic.fetch_and_add counter 1
let reset_counter () = Atomic.set counter 0

(* Seeded hash-fraction selection: stable across runs and OCaml builds as
   long as [Hashtbl.hash] is, and independent for each (seed, id). *)
let selects ~seed ~id ~what fraction =
  fraction > 0.0
  && Hashtbl.hash (seed, id, what) mod 10_000
     < int_of_float (fraction *. 10_000.0)

let inject ~id ~attempt =
  match !spec_ref with
  | None -> ()
  | Some sp ->
      (match sp.fs_crash_at with
      | Some n when n = id ->
          (* Simulate losing the process between checkpoints. SIGKILL
             (not exit) so no at_exit / finaliser can "clean up" — the
             resume path must cope with whatever is on disk. *)
          Unix.kill (Unix.getpid ()) Sys.sigkill
      | _ -> ());
      if attempt <= sp.fs_fail_attempts then begin
        if List.mem id sp.fs_timeout_at then
          (* Cooperative sleep: under an armed deadline this raises
             Task.Timeout mid-delay; with no deadline it is just a slow
             task. *)
          Task.sleep sp.fs_delay_s;
        if List.mem id sp.fs_fail_at
           || selects ~seed:sp.fs_seed ~id ~what:"fail" sp.fs_fail
        then raise (Injected_failure id)
      end
