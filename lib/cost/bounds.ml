(** Admissible cost bounds for DSE pruning — resource lower bounds and
    EKIT upper bounds for a replicated variant, computed from the
    baseline (single-lane pipelined) report {e without lowering the
    variant}.

    The DSE sweep evaluates one cheap baseline per (program, device,
    calibration, form, nki) and then asks, for every candidate lane/vec
    count [pes], two questions a full evaluation would answer three
    orders of magnitude slower:

    - {b can it possibly fit?} Replication shares one PE definition
      (the lowerer emits a single [@f0] for every lane) and adds, per
      extra lane, exactly one PE instance plus its streams' control
      logic — the [est_per_lane] marginal the resource model already
      exposes. So
      {[ usage(pes) = usage(1) + (pes - 1) * per_lane(1) ]}
      holds {e exactly} under the model for ParPipe/ParVecPipe variants,
      and [usage_lb] below is in fact the precise usage. It is still
      only used as a lower bound ([b_fits = false] proves the real
      variant cannot fit) so the pruning argument never depends on
      exactness.

    - {b can it possibly beat the incumbent?} EKIT's terms respond to
      replication in known directions: host, offset-fill, DRAM and
      reconfiguration terms are invariant (traffic and ρ-lookups are per
      kernel instance, not per lane); the compute term divides by [pes];
      pipeline fill and compute stretch by the clock derating, which is
      monotone in utilization — and [usage_lb] gives a utilization lower
      bound, hence a clock {e upper} bound [b_fmax_ub_mhz]. Combining
      the optimistic ends of every term yields [b_ekit_ub ≥] the true
      EKIT of the variant.

    Admissibility contract: both bounds are conservative only for
    homogeneous replicated variants of the {e same} program on the
    {e same} (device, calibration, form, nki) as the baseline report,
    where the baseline is the [pes = 1] pipelined configuration (its
    [cpt], [kpd], [noff] and traffic are preserved or worsened by
    replication). Seq and Pipe themselves must be fully evaluated.
    DESIGN.md §9 gives the derivation term by term. *)

type t = {
  b_pes : int;              (** candidate's processing elements (lanes·vec) *)
  b_usage_lb : Tytra_device.Resources.usage;
      (** componentwise lower bound on the variant's usage (exact under
          the model for replicated variants) *)
  b_util_lb : float;        (** utilization of [b_usage_lb] *)
  b_fits : bool;            (** [false] proves the variant cannot fit *)
  b_fmax_ub_mhz : float;    (** upper bound on the derated clock *)
  b_total_lb_s : float;     (** lower bound on time per kernel instance *)
  b_ekit_ub : float;        (** upper bound on the variant's EKIT *)
}

let area_lb (b : t) : int = b.b_usage_lb.Tytra_device.Resources.aluts

(** [of_baseline ~device ~form ~pes baseline] — bounds for a replicated
    variant with [pes] processing elements, from the baseline (Pipe)
    report. Requires [pes ≥ 1]; at [pes = 1] the bounds coincide with
    the baseline's exact figures. *)
let of_baseline ~(device : Tytra_device.Device.t) ~(form : Throughput.form)
    ~(pes : int) (baseline : Report.t) : t =
  let est = baseline.Report.rp_estimate in
  let bd = baseline.Report.rp_breakdown in
  let usage_lb =
    Tytra_device.Resources.add est.Resource_model.est_usage
      (Tytra_device.Resources.scale (pes - 1) est.Resource_model.est_per_lane)
  in
  let util_lb = Tytra_device.Resources.max_utilization device usage_lb in
  let fits = Tytra_device.Resources.fits device usage_lb in
  let fmax_ub = Tytra_device.Device.fmax_mhz device ~alut_util:util_lb in
  (* clock stretch vs the baseline: both fill and compute are expressed
     in baseline seconds, so scale them by f_baseline / f_ub ≥ 1 *)
  let ratio =
    if fmax_ub > 0.0 then est.Resource_model.est_fmax_mhz /. fmax_ub else 1.0
  in
  let fill_lb = bd.Throughput.bd_fill_s *. ratio in
  let comp_lb = bd.Throughput.bd_comp_s *. ratio /. float_of_int (max 1 pes) in
  let exec_lb =
    match form with
    | Throughput.FormC -> comp_lb
    | Throughput.FormA | Throughput.FormB ->
        Float.max bd.Throughput.bd_gmem_s comp_lb
  in
  (* reconfiguration penalty, recovered from the baseline total; invariant *)
  let reconfig =
    Float.max 0.0
      (bd.Throughput.bd_total_s -. bd.Throughput.bd_host_s
      -. bd.Throughput.bd_off_s -. bd.Throughput.bd_fill_s
      -. bd.Throughput.bd_exec_s)
  in
  let total_lb =
    bd.Throughput.bd_host_s +. bd.Throughput.bd_off_s +. fill_lb +. exec_lb
    +. reconfig
  in
  {
    b_pes = pes;
    b_usage_lb = usage_lb;
    b_util_lb = util_lb;
    b_fits = fits;
    b_fmax_ub_mhz = fmax_ub;
    b_total_lb_s = total_lb;
    b_ekit_ub = (if total_lb > 0.0 then 1.0 /. total_lb else infinity);
  }

let pp fmt (b : t) =
  Format.fprintf fmt
    "pes=%d: usage_lb=%a (util %.0f%%%s), fmax<=%.1f MHz, EKIT<=%.3g /s"
    b.b_pes Tytra_device.Resources.pp b.b_usage_lb
    (100.0 *. b.b_util_lb)
    (if b.b_fits then "" else ", cannot fit")
    b.b_fmax_ub_mhz b.b_ekit_ub
