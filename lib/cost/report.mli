(** One-call evaluation of a design variant: the "Resource estimates /
    Perf' estimate" outputs of the cost-model use-case (paper Fig 2).

    Public interface of [Tytra_cost.Report]. [evaluate] is pure and
    re-entrant — it touches no shared mutable state — so the parallel
    DSE pool may run any number of evaluations concurrently. *)

(** A complete cost-model evaluation of one design variant. *)
type t = {
  rp_design : string;
  rp_device : string;
  rp_estimate : Resource_model.estimate;
  rp_breakdown : Throughput.breakdown;
  rp_walls : Limits.walls;
  rp_balance : Limits.balance_hint;
  rp_valid : bool;     (** fits on the device *)
  rp_utilization : Tytra_device.Resources.utilization;
}

val evaluate :
  ?device:Tytra_device.Device.t ->
  ?calib:Tytra_device.Bandwidth.calib ->
  ?form:Throughput.form ->
  ?nki:int ->
  Tytra_ir.Ast.design ->
  t
(** [evaluate ?device ?calib ?form ?nki d] — run the complete cost model
    on design [d]: parse-derived parameters, resource accumulation,
    throughput and wall analysis. This is the fast path the estimator
    speed claim (§VI-A) is about. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
