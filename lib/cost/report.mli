(** One-call evaluation of a design variant: the "Resource estimates /
    Perf' estimate" outputs of the cost-model use-case (paper Fig 2).

    Public interface of [Tytra_cost.Report]. [evaluate] is observably
    pure and re-entrant — its only shared state is a set of domain-safe
    memoization caches — so the parallel DSE pool may run any number of
    evaluations concurrently.

    Evaluation is staged: per-function resource costing, Table-I
    parameter extraction and the EKIT expression are memoized
    independently (see [report.ml] for the key structure), with hit/miss
    telemetry under [cost.stage_cache.*]. *)

(** A complete cost-model evaluation of one design variant. *)
type t = {
  rp_design : string;
  rp_device : string;
  rp_estimate : Resource_model.estimate;
  rp_breakdown : Throughput.breakdown;
  rp_walls : Limits.walls;
  rp_balance : Limits.balance_hint;
  rp_valid : bool;     (** fits on the device *)
  rp_utilization : Tytra_device.Resources.utilization;
}

val evaluate :
  ?device:Tytra_device.Device.t ->
  ?calib:Tytra_device.Bandwidth.calib ->
  ?form:Throughput.form ->
  ?nki:int ->
  Tytra_ir.Ast.design ->
  t
(** [evaluate ?device ?calib ?form ?nki d] — run the complete cost model
    on design [d]: parse-derived parameters, resource accumulation,
    throughput and wall analysis. This is the fast path the estimator
    speed claim (§VI-A) is about. *)

val stage_cache_stats : unit -> (string * Tytra_exec.Cache.stats) list
(** Hit/miss/eviction statistics of every cost-model stage cache, as
    [(metrics-prefix, stats)] pairs: [cost.stage_cache.resource] (per-PE
    resource costing), [.inputs] (Table-I extraction), [.throughput]
    (EKIT evaluation). *)

val clear_stage_caches : unit -> unit
(** Drop all stage caches and reset their statistics. Benchmarks call
    this between runs to measure cold-start costs honestly. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
