(** Admissible cost bounds for DSE pruning.

    From the baseline (single-lane pipelined) report of a program on a
    given (device, calibration, form, nki), [of_baseline] computes — for
    a replicated variant with [pes] processing elements and {e without
    lowering it} — a componentwise {e lower} bound on its resource usage
    and an {e upper} bound on its EKIT. The sweep may then discard
    candidates whose resource lower bound overflows the device (they
    could never be valid) or whose EKIT upper bound is strictly below an
    already-evaluated incumbent that also uses no more area (they are
    dominated), without changing [best] or [pareto]. See [bounds.ml] and
    DESIGN.md §9 for the admissibility argument.

    Only sound for homogeneous replicated variants (ParPipe /
    ParVecPipe) of the same program and evaluation parameters as the
    baseline; Seq and Pipe must be evaluated in full. *)

type t = {
  b_pes : int;              (** candidate's processing elements (lanes·vec) *)
  b_usage_lb : Tytra_device.Resources.usage;
      (** componentwise lower bound on the variant's usage *)
  b_util_lb : float;        (** utilization of [b_usage_lb] *)
  b_fits : bool;            (** [false] proves the variant cannot fit *)
  b_fmax_ub_mhz : float;    (** upper bound on the derated clock *)
  b_total_lb_s : float;     (** lower bound on time per kernel instance *)
  b_ekit_ub : float;        (** upper bound on the variant's EKIT *)
}

val area_lb : t -> int
(** ALUT component of the usage lower bound — the area figure the DSE
    Pareto front is built over. *)

val of_baseline :
  device:Tytra_device.Device.t ->
  form:Throughput.form ->
  pes:int ->
  Report.t ->
  t
(** [of_baseline ~device ~form ~pes baseline] — bounds for a replicated
    variant with [pes] processing elements. [baseline] must be the full
    report of the [Pipe] variant on the same program, device,
    calibration, form and nki. At [pes = 1] the bounds coincide with the
    baseline's exact figures. *)

val pp : Format.formatter -> t -> unit
