(** One-call evaluation of a design variant: the "Resource estimates /
    Perf' estimate" outputs of the cost-model use-case (paper Fig 2).

    Evaluation is split into separately memoized stages so repeated
    sweeps re-pay only what actually changed:

    - {e resource stage} — per-function costing inside
      {!Resource_model.estimate}, keyed by a structural digest of the IR
      function + calibration (see [resource_model.ml]); a lane sweep
      costs the shared PE once.
    - {e inputs stage} — the Table-I parameter extraction
      ({!Throughput.inputs_of_design}: IR analysis, traffic, empirical ρ
      lookups), keyed by design + device + calibration + nki + clock.
      Re-evaluating the same design under another memory-execution form
      (form selection, bench E3) skips it entirely.
    - {e throughput stage} — the EKIT expression itself, keyed by the
      collapsed numeric inputs + form, so structurally different designs
      with identical Table-I parameters share one evaluation.

    All stages run through {!Tytra_exec.Cache} and publish hit/miss
    counters under [cost.stage_cache.*]. *)

(** A complete cost-model evaluation of one design variant. *)
type t = {
  rp_design : string;
  rp_device : string;
  rp_estimate : Resource_model.estimate;
  rp_breakdown : Throughput.breakdown;
  rp_walls : Limits.walls;
  rp_balance : Limits.balance_hint;
  rp_valid : bool;     (** fits on the device *)
  rp_utilization : Tytra_device.Resources.utilization;
}

(* ------------------------------------------------------------------ *)
(* Stage caches                                                        *)
(* ------------------------------------------------------------------ *)

let inputs_cache : Throughput.inputs Tytra_exec.Cache.t =
  Tytra_exec.Cache.create ~metrics_prefix:"cost.stage_cache.inputs"
    ~capacity:4096 ()

let throughput_cache : Throughput.breakdown Tytra_exec.Cache.t =
  Tytra_exec.Cache.create ~metrics_prefix:"cost.stage_cache.throughput"
    ~capacity:4096 ()

let calib_key = function
  | None -> "device-default"
  | Some c -> Tytra_exec.Cache.digest_marshal c

let inputs_stage ~device ?calib ~nki ~fmax_mhz (d : Tytra_ir.Ast.design) :
    Throughput.inputs =
  let key =
    Tytra_exec.Cache.digest_key
      [ "inputs";
        Tytra_exec.Cache.digest_marshal d;
        device.Tytra_device.Device.dev_name;
        calib_key calib;
        string_of_int nki;
        Printf.sprintf "%h" fmax_mhz ]
  in
  Tytra_exec.Cache.find_or_add inputs_cache ~key (fun () ->
      Throughput.inputs_of_design ~device ?calib ~nki ~fmax_mhz d)

let throughput_stage ~form (inputs : Throughput.inputs) :
    Throughput.breakdown =
  let key =
    Tytra_exec.Cache.digest_key
      [ "ekit"; Throughput.form_to_string form;
        Tytra_exec.Cache.digest_marshal inputs ]
  in
  Tytra_exec.Cache.find_or_add throughput_cache ~key (fun () ->
      Throughput.ekit form inputs)

let stage_cache_stats () =
  [ ("cost.stage_cache.resource", Resource_model.pe_cache_stats ());
    ("cost.stage_cache.inputs", Tytra_exec.Cache.stats inputs_cache);
    ("cost.stage_cache.throughput", Tytra_exec.Cache.stats throughput_cache) ]

let clear_stage_caches () =
  Resource_model.clear_pe_cache ();
  Tytra_exec.Cache.clear inputs_cache;
  Tytra_exec.Cache.reset_stats inputs_cache;
  Tytra_exec.Cache.clear throughput_cache;
  Tytra_exec.Cache.reset_stats throughput_cache

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

(** [evaluate ?device ?calib ?form ?nki d] — run the complete cost model
    on design [d]: parse-derived parameters, resource accumulation,
    throughput and wall analysis. This is the fast path the estimator
    speed claim (§VI-A) is about. *)
let evaluate ?(device = Tytra_device.Device.stratixv_gsd8) ?calib
    ?(form = Throughput.FormB) ?(nki = 1) (d : Tytra_ir.Ast.design) : t =
  Tytra_telemetry.Span.with_ ~name:"cost.evaluate"
    ~attrs:
      [ ("design", Tytra_telemetry.Span.Str d.Tytra_ir.Ast.d_name);
        ("device", Tytra_telemetry.Span.Str device.Tytra_device.Device.dev_name);
        ("form", Tytra_telemetry.Span.Str (Throughput.form_to_string form));
        ("nki", Tytra_telemetry.Span.Int nki) ]
  @@ fun () ->
  Tytra_telemetry.Metrics.incr "cost.evaluations";
  let est = Resource_model.estimate ~device d in
  let inputs, breakdown =
    Tytra_telemetry.Span.with_ ~name:"cost.throughput" (fun () ->
        let inputs =
          inputs_stage ~device ?calib ~nki
            ~fmax_mhz:est.Resource_model.est_fmax_mhz d
        in
        (inputs, throughput_stage ~form inputs))
  in
  let walls, balance =
    Tytra_telemetry.Span.with_ ~name:"cost.limits" (fun () ->
        (Limits.walls ~device ~est ~inputs, Limits.balance_hint ~device ~est))
  in
  {
    rp_design = d.Tytra_ir.Ast.d_name;
    rp_device = device.Tytra_device.Device.dev_name;
    rp_estimate = est;
    rp_breakdown = breakdown;
    rp_walls = walls;
    rp_balance = balance;
    rp_valid = Tytra_device.Resources.fits device est.Resource_model.est_usage;
    rp_utilization =
      Tytra_device.Resources.utilization device est.Resource_model.est_usage;
  }

let pp fmt (r : t) =
  Format.fprintf fmt "=== cost model: %s on %s ===@\n" r.rp_design r.rp_device;
  Format.fprintf fmt "resources: %a@\n" Resource_model.pp_estimate r.rp_estimate;
  Format.fprintf fmt "utilization: %a%s@\n" Tytra_device.Resources.pp_utilization
    r.rp_utilization
    (if r.rp_valid then "" else "  ** DOES NOT FIT **");
  Format.fprintf fmt "throughput: %a@\n" Throughput.pp_breakdown r.rp_breakdown;
  Format.fprintf fmt "walls: %a@\n" Limits.pp_walls r.rp_walls;
  Format.fprintf fmt "balance: binding=%s headroom=[%s]@\n"
    r.rp_balance.Limits.bh_binding
    (String.concat "; "
       (List.map
          (fun (n, h) -> Printf.sprintf "%s %.0f%%" n (100.0 *. h))
          r.rp_balance.Limits.bh_headroom))

let to_string r = Format.asprintf "%a" pp r
