(** One-call evaluation of a design variant: the "Resource estimates /
    Perf' estimate" outputs of the cost-model use-case (paper Fig 2). *)

(** A complete cost-model evaluation of one design variant. *)
type t = {
  rp_design : string;
  rp_device : string;
  rp_estimate : Resource_model.estimate;
  rp_breakdown : Throughput.breakdown;
  rp_walls : Limits.walls;
  rp_balance : Limits.balance_hint;
  rp_valid : bool;     (** fits on the device *)
  rp_utilization : Tytra_device.Resources.utilization;
}

(** [evaluate ?device ?calib ?form ?nki d] — run the complete cost model
    on design [d]: parse-derived parameters, resource accumulation,
    throughput and wall analysis. This is the fast path the estimator
    speed claim (§VI-A) is about. *)
let evaluate ?(device = Tytra_device.Device.stratixv_gsd8) ?calib
    ?(form = Throughput.FormB) ?(nki = 1) (d : Tytra_ir.Ast.design) : t =
  Tytra_telemetry.Span.with_ ~name:"cost.evaluate"
    ~attrs:
      [ ("design", Tytra_telemetry.Span.Str d.Tytra_ir.Ast.d_name);
        ("device", Tytra_telemetry.Span.Str device.Tytra_device.Device.dev_name);
        ("form", Tytra_telemetry.Span.Str (Throughput.form_to_string form));
        ("nki", Tytra_telemetry.Span.Int nki) ]
  @@ fun () ->
  Tytra_telemetry.Metrics.incr "cost.evaluations";
  let est = Resource_model.estimate ~device d in
  let inputs, breakdown =
    Tytra_telemetry.Span.with_ ~name:"cost.throughput" (fun () ->
        let inputs =
          Throughput.inputs_of_design ~device ?calib ~nki
            ~fmax_mhz:est.Resource_model.est_fmax_mhz d
        in
        (inputs, Throughput.ekit form inputs))
  in
  let walls, balance =
    Tytra_telemetry.Span.with_ ~name:"cost.limits" (fun () ->
        (Limits.walls ~device ~est ~inputs, Limits.balance_hint ~device ~est))
  in
  {
    rp_design = d.Tytra_ir.Ast.d_name;
    rp_device = device.Tytra_device.Device.dev_name;
    rp_estimate = est;
    rp_breakdown = breakdown;
    rp_walls = walls;
    rp_balance = balance;
    rp_valid = Tytra_device.Resources.fits device est.Resource_model.est_usage;
    rp_utilization =
      Tytra_device.Resources.utilization device est.Resource_model.est_usage;
  }

let pp fmt (r : t) =
  Format.fprintf fmt "=== cost model: %s on %s ===@\n" r.rp_design r.rp_device;
  Format.fprintf fmt "resources: %a@\n" Resource_model.pp_estimate r.rp_estimate;
  Format.fprintf fmt "utilization: %a%s@\n" Tytra_device.Resources.pp_utilization
    r.rp_utilization
    (if r.rp_valid then "" else "  ** DOES NOT FIT **");
  Format.fprintf fmt "throughput: %a@\n" Throughput.pp_breakdown r.rp_breakdown;
  Format.fprintf fmt "walls: %a@\n" Limits.pp_walls r.rp_walls;
  Format.fprintf fmt "balance: binding=%s headroom=[%s]@\n"
    r.rp_balance.Limits.bh_binding
    (String.concat "; "
       (List.map
          (fun (n, h) -> Printf.sprintf "%s %.0f%%" n (100.0 *. h))
          r.rp_balance.Limits.bh_headroom))

let to_string r = Format.asprintf "%a" pp r
