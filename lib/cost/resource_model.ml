(** Analytical resource-utilization cost model (paper §V-A).

    Closed-form, per-instruction expressions — first or second order in
    the bit-width, calibrated once per device family from a handful of
    synthesis experiments (see {!Fit} and experiment E1/Fig 9) — are
    accumulated over the IR together with the structural information
    implied by the type of each IR function: pipeline delay lines, offset
    windows, stream control, replication across lanes.

    The accumulation is structural IR parsing only (fast); contrast with
    the tech-mapper's netlist elaboration + placement (slow, the paper's
    70 s SDAccel comparison point). *)

open Tytra_ir

let ceil_div a b = (a + b - 1) / b

(** Calibrated per-op expressions for a device family. The defaults below
    are the shipped calibration for Stratix-V-class fabrics; E1
    regenerates the div/mul entries from three synthesis points and
    verifies held-out widths. *)
type calibration = {
  cal_family : string;
  div_aluts : Fit.poly;          (** quadratic in bit-width *)
  mul_alut_segments : Fit.piecewise; (** piecewise-linear in bit-width *)
  mul_dsp_breaks : int list;     (** DSP step thresholds (18, 36, 54) *)
}

(** The paper's fitted quadratic for unsigned integer division on
    Stratix-V: x² + 3.7x − 10.6 (Fig 9). *)
let default_calibration : calibration =
  {
    cal_family = "stratix-v";
    div_aluts = [| -10.6; 3.7; 1.0 |];
    mul_alut_segments =
      {
        Fit.pw_breaks = [ 18.0; 36.0; 54.0 ];
        pw_segments =
          [ [| 4.0 |]; [| 20.0; 2.0 |]; [| 20.0; 4.0 |]; [| 20.0; 6.0 |] ];
      };
    mul_dsp_breaks = [ 18; 36; 54 ];
  }

(** ALUTs for one instruction at type [ty] — the closed-form table. *)
let alut_cost ?(cal = default_calibration) (op : Ast.op) (ty : Ty.t) : int =
  let w = Ty.width ty in
  let wf = float_of_int w in
  if Ty.is_float ty then
    match op with
    | Ast.Add | Ast.Sub -> if w = 32 then 480 else 1050
    | Ast.Mul -> if w = 32 then 130 else 410
    | Ast.Div -> if w = 32 then 820 else 3150
    | Ast.Sqrt -> if w = 32 then 460 else 1900
    | Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt | Ast.CmpGe
      -> 60
    | Ast.Min | Ast.Max -> 90
    | Ast.Abs | Ast.Neg -> 2
    | Ast.Select -> ceil_div w 2
    | Ast.Mov -> 0
    | _ -> 40
  else
    match op with
    | Ast.Add | Ast.Sub -> w
    | Ast.Mul ->
        (* piecewise-linear: the (tiles−1)·2w + 20 trend with
           discontinuities at multiples of 18 bits *)
        int_of_float (Float.round (Fit.piecewise_eval cal.mul_alut_segments wf))
    | Ast.Div | Ast.Rem ->
        (* calibrated quadratic (paper: x² + 3.7x − 10.6) *)
        max 2 (int_of_float (Float.round (Fit.eval cal.div_aluts wf)))
    | Ast.Sqrt -> max 2 (int_of_float (Float.round ((wf /. 2.0 *. (wf +. 3.0)) -. 6.0)))
    | Ast.And | Ast.Or | Ast.Xor -> ceil_div w 2
    | Ast.Not -> ceil_div w 8 + 1
    | Ast.Shl | Ast.Shr ->
        let stages = max 1 (int_of_float (ceil (log wf /. log 2.))) in
        ceil_div (w * stages) 2
    | Ast.Min | Ast.Max -> w + ceil_div w 2
    | Ast.Abs -> if Ty.is_signed ty then w else 0
    | Ast.Neg -> w
    | Ast.CmpEq | Ast.CmpNe -> ceil_div w 3 + 1
    | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt | Ast.CmpGe -> ceil_div w 2 + 1
    | Ast.Select -> ceil_div w 2
    | Ast.Mov -> 0

(** DSP elements for one instruction: a step function of the bit-width
    with jumps at the 18×18-tile boundaries (paper Fig 9, right axis). *)
let dsp_cost ?(cal = default_calibration) (op : Ast.op) (ty : Ty.t) : int =
  ignore cal;
  let w = Ty.width ty in
  if Ty.is_float ty then
    match op with
    | Ast.Mul -> if w = 32 then 2 else 8
    | Ast.Add | Ast.Sub -> if w = 32 then 0 else 2
    | _ -> 0
  else
    match op with
    | Ast.Mul ->
        let tiles = ceil_div w 18 in
        if tiles <= 1 then 1 else 2 * tiles
    | _ -> 0

(** Registers for one instruction: its pipeline stage registers. *)
let reg_cost (op : Ast.op) (ty : Ty.t) : int =
  let rw =
    match op with
    | Ast.CmpEq | Ast.CmpNe | Ast.CmpLt | Ast.CmpLe | Ast.CmpGt | Ast.CmpGe ->
        1
    | _ -> Ty.width ty
  in
  Opinfo.latency op ty * rw

(** Structural constants (stream control, glue). Shared with the
    tech-mapper's accounting — both describe the same generated
    architecture; the tech-mapper then adds packing/placement effects. *)
let stream_ctrl_aluts = 58
let stream_ctrl_regs = 94
let top_glue_aluts = 26
let top_glue_regs = 40
let lane_glue_aluts = 9
let lane_glue_regs = 12

(** A full design estimate. *)
type estimate = {
  est_usage : Tytra_device.Resources.usage;
  est_fmax_mhz : float;
  est_per_lane : Tytra_device.Resources.usage;
      (** marginal usage of one additional lane (drives DSE walls) *)
  est_device : string;
  est_design : string;
}

let pp_estimate fmt e =
  Format.fprintf fmt "%s on %s: %a, Fmax %.1f MHz" e.est_design e.est_device
    Tytra_device.Resources.pp e.est_usage e.est_fmax_mhz

(* usage of a single PE function: datapath + delay lines + windows *)
let pe_usage_uncached ?(cal = default_calibration) (d : Ast.design)
    (f : Ast.func) : Tytra_device.Resources.usage =
  let aluts = ref 0 and regs = ref 0 and dsps = ref 0 in
  List.iter
    (fun (i : Ast.instr) ->
      match i with
      | Ast.Assign { op = (Ast.Shl | Ast.Shr) as op; ty; args = [ _; Ast.Imm _ ]; _ } ->
          (* constant shifts are pure wiring: no ALUTs, just the stage reg *)
          regs := !regs + reg_cost op ty
      | Ast.Assign { op; ty; _ } ->
          aluts := !aluts + alut_cost ~cal op ty;
          dsps := !dsps + dsp_cost ~cal op ty;
          regs := !regs + reg_cost op ty
      | _ -> ())
    f.fn_body;
  let sched = Tytra_hdl.Schedule.schedule_func d f in
  regs := !regs + sched.Tytra_hdl.Schedule.sc_delay_regs
          + sched.Tytra_hdl.Schedule.sc_depth + 1;
  aluts := !aluts + lane_glue_aluts;
  regs := !regs + lane_glue_regs;
  let bram_bits = ref 0 and bram_blocks = ref 0 in
  List.iter
    (fun (b : Tytra_hdl.Offsetbuf.buf) ->
      if b.Tytra_hdl.Offsetbuf.ob_in_bram then begin
        bram_bits := !bram_bits + b.Tytra_hdl.Offsetbuf.ob_bits;
        (* block count estimated at ideal packing *)
        bram_blocks := !bram_blocks + max 1 (b.Tytra_hdl.Offsetbuf.ob_bits / 20480)
      end
      else regs := !regs + b.Tytra_hdl.Offsetbuf.ob_bits)
    (Tytra_hdl.Offsetbuf.of_func f);
  {
    Tytra_device.Resources.aluts = !aluts;
    regs = !regs;
    bram_bits = !bram_bits;
    bram_blocks = !bram_blocks;
    dsps = !dsps;
  }

(* ------------------------------------------------------------------ *)
(* Stage cache: per-function resource costing                          *)
(* ------------------------------------------------------------------ *)

(* [pe_usage] is a pure function of the PE's body and the calibration:
   scheduling ignores the surrounding design and the offset windows are
   derived from the function alone. Memoizing on a structural digest of
   (function, calibration) makes a lane sweep cost each distinct PE once
   — an L-lane variant re-uses the baseline's @f0 costing for all L
   instances, so only the lane-dependent parts (stream control, glue,
   walls) are recomputed per variant. *)
let pe_cache : Tytra_device.Resources.usage Tytra_exec.Cache.t =
  Tytra_exec.Cache.create ~metrics_prefix:"cost.stage_cache.resource"
    ~capacity:1024 ()

let pe_usage ?(cal = default_calibration) (d : Ast.design) (f : Ast.func) :
    Tytra_device.Resources.usage =
  let key =
    Tytra_exec.Cache.digest_key
      [ "pe-usage"; Tytra_exec.Cache.digest_marshal f;
        Tytra_exec.Cache.digest_marshal cal ]
  in
  Tytra_exec.Cache.find_or_add pe_cache ~key (fun () ->
      pe_usage_uncached ~cal d f)

let pe_cache_stats () = Tytra_exec.Cache.stats pe_cache

let clear_pe_cache () =
  Tytra_exec.Cache.clear pe_cache;
  Tytra_exec.Cache.reset_stats pe_cache

(** [estimate ?device ?cal d] — resource estimate for the whole design:
    every PE instance, its offset windows and delay lines, per-stream
    control logic, and top-level glue; plus the utilization-derated clock
    estimate. *)
let estimate ?(device = Tytra_device.Device.stratixv_gsd8)
    ?(cal = default_calibration) (d : Ast.design) : estimate =
  Tytra_telemetry.Span.with_ ~name:"cost.resource_model"
    ~attrs:
      [ ("design", Tytra_telemetry.Span.Str d.Ast.d_name);
        ("device", Tytra_telemetry.Span.Str device.Tytra_device.Device.dev_name) ]
  @@ fun () ->
  let summary = Config_tree.classify d in
  let pes = List.filter_map (Ast.find_func d) summary.Config_tree.cs_pes in
  let pe_usages = List.map (pe_usage ~cal d) pes in
  let datapath = Tytra_device.Resources.sum pe_usages in
  let nstreams = List.length d.Ast.d_streams in
  let infra =
    {
      Tytra_device.Resources.aluts =
        (nstreams * stream_ctrl_aluts) + top_glue_aluts;
      regs = (nstreams * stream_ctrl_regs) + top_glue_regs;
      bram_bits = 0;
      bram_blocks = 0;
      dsps = 0;
    }
  in
  let usage = Tytra_device.Resources.add datapath infra in
  let lanes = max 1 (List.length pes) in
  let per_lane =
    match pe_usages with
    | u :: _ ->
        (* one more lane adds one PE + its streams' control *)
        let streams_per_lane = max 1 (nstreams / lanes) in
        Tytra_device.Resources.add u
          {
            Tytra_device.Resources.aluts = streams_per_lane * stream_ctrl_aluts;
            regs = streams_per_lane * stream_ctrl_regs;
            bram_bits = 0;
            bram_blocks = 0;
            dsps = 0;
          }
    | [] -> Tytra_device.Resources.zero
  in
  let util = Tytra_device.Resources.max_utilization device usage in
  let fmax = Tytra_device.Device.fmax_mhz device ~alut_util:util in
  {
    est_usage = usage;
    est_fmax_mhz = fmax;
    est_per_lane = per_lane;
    est_device = device.Tytra_device.Device.dev_name;
    est_design = d.Ast.d_name;
  }

(** [calibrate_div synth] — regenerate the division quadratic from three
    synthesis points, exactly as the paper does for Fig 9: [synth w]
    returns the measured ALUTs at bit-width [w]. *)
let calibrate_div (synth : int -> int) : Fit.poly =
  Fit.polyfit ~degree:2
    (List.map (fun w -> (float_of_int w, float_of_int (synth w))) [ 18; 32; 64 ])

(** [calibrate_mul synth] — regenerate the multiplier's piecewise-linear
    ALUT curve from synthesis points across the tiling segments. *)
let calibrate_mul (synth : int -> int) : Fit.piecewise =
  let widths = [ 8; 12; 18; 24; 30; 36; 44; 50; 54; 60; 64 ] in
  Fit.piecewise_fit ~breaks:[ 18.0; 36.0; 54.0 ]
    (List.map (fun w -> (float_of_int w, float_of_int (synth w))) widths)
