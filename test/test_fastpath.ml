(* IR fast-path differential tests (DESIGN.md §10): the fast
   implementations must be observably identical to their reference
   twins.

   - derived variants (Lower.template / Lower.derive) pretty-print
     byte-identically to a full Lower.lower and validate clean;
   - the indexed one-pass validator agrees with the multi-pass
     reference on valid and broken designs, reports errors in source
     order, and deduplicates identical (loc, msg) pairs;
   - DSE selections (best / pareto) are byte-identical with the fast
     path on and off. *)

open Tytra_ir
open Tytra_front

let contains s substr =
  let n = String.length substr in
  let rec find i =
    i + n <= String.length s && (String.sub s i n = substr || find (i + 1))
  in
  find 0

let kernels () =
  [
    ("sor", Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 ());
    ("hotspot", Tytra_kernels.Hotspot.program ~rows:16 ~cols:16 ());
    ("lavamd", Tytra_kernels.Lavamd.program ~boxes:16 ());
    ("srad", Tytra_kernels.Srad.program ~rows:16 ~cols:16 ());
  ]

let variants p = Transform.enumerate ~max_lanes:8 ~max_vec:4 p

(* ---- derived-variant equivalence ---- *)

let test_derive_prints_identically () =
  List.iter
    (fun (name, p) ->
      let tpl = Lower.template p in
      List.iter
        (fun v ->
          let full = Pprint.design_to_string (Lower.lower p v) in
          let fast = Pprint.design_to_string (Lower.derive tpl v) in
          Alcotest.(check string)
            (Printf.sprintf "%s %s derived == lowered" name
               (Transform.to_string v))
            full fast)
        (variants p))
    (kernels ())

let test_derive_validates_clean () =
  List.iter
    (fun (name, p) ->
      let tpl = Lower.template p in
      List.iter
        (fun v ->
          let d = Lower.derive tpl v in
          Alcotest.(check int)
            (Printf.sprintf "%s %s derived validates clean" name
               (Transform.to_string v))
            0
            (List.length (Validate.check d)))
        (variants p))
    (kernels ())

let test_derive_rejects_bad_delta () =
  (* a broken wiring delta must still be caught even though the PE body
     is trusted: point one port at a missing stream *)
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let tpl = Lower.template p in
  let d = Lower.derive tpl (Transform.ParPipe 2) in
  let broken =
    {
      d with
      Ast.d_ports =
        (match d.Ast.d_ports with
        | p0 :: rest -> { p0 with Ast.pt_stream = "nosuch" } :: rest
        | [] -> []);
    }
  in
  Alcotest.(check bool)
    "delta validation catches broken wiring" true
    (List.exists
       (fun e -> contains (Validate.error_to_string e) "unknown stream")
       (Validate.check_delta ~trusted:[ "f0" ] broken))

(* ---- indexed validator vs reference ---- *)

let err_set errs =
  List.sort_uniq compare (List.map Validate.error_to_string errs)

let check_agree name d =
  Alcotest.(check (list string))
    (name ^ ": indexed and reference validators agree")
    (err_set (Validate.check_reference d))
    (err_set (Fastpath.with_enabled true (fun () -> Validate.check d)))

let test_validator_agrees_on_valid () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun v -> check_agree name (Lower.lower p v))
        (variants p))
    (kernels ())

let test_validator_agrees_on_broken () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let d = Lower.lower p (Transform.ParPipe 4) in
  let break label f = (label, f d) in
  List.iter
    (fun (label, broken) -> check_agree label broken)
    [
      break "no main"
        (fun d ->
          {
            d with
            Ast.d_funcs =
              List.filter (fun f -> f.Ast.fn_name <> "main") d.Ast.d_funcs;
          });
      break "dangling stream"
        (fun d ->
          {
            d with
            Ast.d_ports =
              List.map
                (fun pt -> { pt with Ast.pt_stream = "nosuch" })
                d.Ast.d_ports;
          });
      break "duplicate function"
        (fun d -> { d with Ast.d_funcs = d.Ast.d_funcs @ d.Ast.d_funcs });
      break "dangling mem"
        (fun d ->
          {
            d with
            Ast.d_streams =
              List.map
                (fun s -> { s with Ast.so_mem = "nosuch" })
                d.Ast.d_streams;
          });
    ]

let test_errors_in_source_order () =
  (* a Manage-IR defect must be reported before a Compute-IR defect,
     regardless of discovery strategy *)
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let d = Lower.lower p Transform.Pipe in
  let broken =
    {
      d with
      Ast.d_mems =
        List.map (fun m -> { m with Ast.mo_size = -1 }) d.Ast.d_mems;
      Ast.d_funcs =
        List.filter (fun f -> f.Ast.fn_name <> "f0") d.Ast.d_funcs;
    }
  in
  match Fastpath.with_enabled true (fun () -> Validate.check broken) with
  | first :: _ ->
      Alcotest.(check bool)
        "first error is the memory-object one" true
        (contains (Validate.error_to_string first) "size must be positive")
  | [] -> Alcotest.fail "expected errors"

let test_errors_deduplicated () =
  (* the same (loc, msg) pair produced many times — e.g. every lane's
     port referencing one missing stream family — appears once *)
  let open Ast in
  let d =
    {
      d_name = "dup_errs";
      d_mems = [];
      d_streams = [];
      d_ports = [];
      d_globals = [];
      d_funcs =
        [
          {
            fn_name = "main";
            fn_params = [];
            fn_kind = Seq;
            fn_body =
              [
                Assign
                  {
                    dst = Dlocal "a";
                    ty = Ty.UInt 32;
                    op = Add;
                    args = [ Var "x"; Var "x" ];
                  };
                Assign
                  {
                    dst = Dlocal "b";
                    ty = Ty.UInt 32;
                    op = Add;
                    args = [ Var "x"; Var "x" ];
                  };
              ];
          };
        ];
    }
  in
  let errs = Fastpath.with_enabled true (fun () -> Validate.check d) in
  let undefined_x =
    List.filter
      (fun e -> contains (Validate.error_to_string e) "undefined local %x")
      errs
  in
  Alcotest.(check int) "four uses of %x report once" 1
    (List.length undefined_x)

(* ---- annealer equivalence ---- *)

let test_annealer_bit_identical () =
  (* delta-wirelength annealing must reproduce the reference placement
     exactly: same PRNG draws, same accept decisions, same final
     wirelength — across kernels and lane counts *)
  List.iter
    (fun (name, p) ->
      List.iter
        (fun v ->
          let d = Lower.lower p v in
          let summary = Config_tree.classify d in
          let pes =
            List.filter_map (Ast.find_func d)
              summary.Config_tree.cs_pes
          in
          let nl = Tytra_sim.Techmap.build_netlist d pes in
          let run fast =
            let rng = Tytra_sim.Prng.of_string ("anneal:" ^ name) in
            Tytra_sim.Techmap.place ~fast ~rng ~effort:4 nl
          in
          let f = run true and s = run false in
          let open Tytra_sim.Techmap in
          Alcotest.(check (float 1e-6))
            (Printf.sprintf "%s %s pl_avg_wire identical" name
               (Transform.to_string v))
            s.pl_avg_wire f.pl_avg_wire;
          Alcotest.(check int)
            (Printf.sprintf "%s %s accepted swaps identical" name
               (Transform.to_string v))
            s.pl_accepted f.pl_accepted)
        [ Transform.Pipe; Transform.ParPipe 4 ])
    (kernels ())

let test_annealer_no_drift () =
  (* the periodic full recompute must agree with the running delta total:
     wirelength is integer arithmetic, so drift is exactly zero *)
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let d = Lower.lower p (Transform.ParPipe 4) in
  let summary = Config_tree.classify d in
  let pes =
    List.filter_map (Ast.find_func d) summary.Config_tree.cs_pes
  in
  let nl = Tytra_sim.Techmap.build_netlist d pes in
  Tytra_telemetry.Control.set_enabled true;
  Fun.protect ~finally:(fun () -> Tytra_telemetry.Control.set_enabled false)
  @@ fun () ->
  let rng = Tytra_sim.Prng.of_string "anneal:drift" in
  (* enough moves to cross several drift-check intervals *)
  ignore (Tytra_sim.Techmap.place ~fast:true ~rng ~effort:40 nl);
  match Tytra_telemetry.Metrics.gauge_value "sim.techmap.anneal.drift" with
  | Some drift ->
      Alcotest.(check (float 1e-6)) "drift is zero" 0.0 drift
  | None -> Alcotest.fail "drift gauge not published"

(* ---- DSE selections are identical fast vs slow ---- *)

let signature pts =
  List.map
    (fun p ->
      ( Transform.to_string p.Tytra_dse.Dse.dp_variant,
        Tytra_dse.Dse.ekit p,
        Tytra_dse.Dse.area p,
        Pprint.design_to_string p.Tytra_dse.Dse.dp_design ))
    pts

let test_dse_selections_identical () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let config =
    { Tytra_dse.Dse.default_config with max_lanes = 8; use_cache = false }
  in
  let run fast =
    Fastpath.with_enabled fast (fun () ->
        Tytra_dse.Dse.clear_cache ();
        let pts = Tytra_dse.Dse.explore ~config p in
        ( Option.map signature
            (Option.map (fun b -> [ b ]) (Tytra_dse.Dse.best pts)),
          signature (Tytra_dse.Dse.pareto pts) ))
  in
  let best_fast, pareto_fast = run true in
  let best_slow, pareto_slow = run false in
  Alcotest.(check bool) "best identical" true (best_fast = best_slow);
  Alcotest.(check bool) "pareto identical" true (pareto_fast = pareto_slow)

let test_derive_counts () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let config =
    { Tytra_dse.Dse.default_config with max_lanes = 8; use_cache = false }
  in
  Tytra_telemetry.Control.set_enabled true;
  Fun.protect ~finally:(fun () -> Tytra_telemetry.Control.set_enabled false)
  @@ fun () ->
  let before =
    Option.value ~default:0.0
      (Tytra_telemetry.Metrics.counter_value "dse.points_derived")
  in
  Fastpath.with_enabled true (fun () ->
      Tytra_dse.Dse.clear_cache ();
      ignore (Tytra_dse.Dse.explore ~config p));
  let after =
    Option.value ~default:0.0
      (Tytra_telemetry.Metrics.counter_value "dse.points_derived")
  in
  Alcotest.(check bool) "derived points counted" true (after > before)

let suite =
  [
    Alcotest.test_case "derived variants pretty-print identically" `Quick
      test_derive_prints_identically;
    Alcotest.test_case "derived variants validate clean" `Quick
      test_derive_validates_clean;
    Alcotest.test_case "delta validation catches broken wiring" `Quick
      test_derive_rejects_bad_delta;
    Alcotest.test_case "validators agree on valid designs" `Quick
      test_validator_agrees_on_valid;
    Alcotest.test_case "validators agree on broken designs" `Quick
      test_validator_agrees_on_broken;
    Alcotest.test_case "errors in source order" `Quick
      test_errors_in_source_order;
    Alcotest.test_case "identical errors deduplicated" `Quick
      test_errors_deduplicated;
    Alcotest.test_case "annealer bit-identical to reference" `Quick
      test_annealer_bit_identical;
    Alcotest.test_case "annealer delta total never drifts" `Quick
      test_annealer_no_drift;
    Alcotest.test_case "DSE selections identical fast vs slow" `Quick
      test_dse_selections_identical;
    Alcotest.test_case "derived points counted" `Quick test_derive_counts;
  ]
