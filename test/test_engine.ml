(* The engine and its wire protocol: codec round-trips, totality on
   malformed bytes (the PR-5 fuzz corpus extended to the request codec),
   CLI byte-compatibility, warm-cache behavior, concurrent mixed-kernel
   clients, and the serve loop (routing, admission control, drain). *)

module Engine = Tytra_engine.Engine
module Protocol = Tytra_engine.Protocol
module Daemon = Tytra_engine.Daemon
module Serve = Tytra_telemetry.Serve

let dev = Tytra_device.Device.stratixv_gsd8

let sor_inline =
  let prog = Tytra_kernels.Sor.program ~im:8 ~jm:8 ~km:8 () in
  let d = Tytra_front.Lower.lower prog Tytra_front.Transform.Pipe in
  Format.asprintf "%a" Tytra_ir.Pprint.pp_design d

let hotspot_inline =
  let prog = Tytra_kernels.Hotspot.program ~rows:8 ~cols:8 () in
  let d = Tytra_front.Lower.lower prog Tytra_front.Transform.Pipe in
  Format.asprintf "%a" Tytra_ir.Pprint.pp_design d

let requests_under_test : (string * Engine.request) list =
  [
    ("check", Engine.Check { source = Engine.Inline sor_inline });
    ( "cost",
      Engine.Cost
        {
          source = Engine.File "x.tirl";
          device = dev;
          form = Tytra_cost.Throughput.FormA;
          nki = 10;
          optimize = true;
          calib = Some "c.json";
        } );
    ( "synth",
      Engine.Synth
        {
          source = Engine.Inline "design";
          device = dev;
          effort = `Fast;
          optimize = false;
        } );
    ( "sim",
      Engine.Sim
        {
          source = Engine.File "y.tirl";
          device = dev;
          form = Tytra_cost.Throughput.FormC;
          nki = 3;
          optimize = false;
        } );
    ( "explore",
      Engine.Explore
        {
          Engine.x_kernel = Engine.Hotspot;
          x_size = 8;
          x_max_lanes = 4;
          x_device = dev;
          x_form = Tytra_cost.Throughput.FormB;
          x_nki = 2;
          x_jobs = 2;
          x_prune = false;
          x_retries = 1;
          x_deadline_s = Some 2.5;
          x_best_effort = true;
          x_checkpoint = Some "/tmp/ck";
          x_checkpoint_every = 8;
          x_resume = None;
          x_place_mode = Some Tytra_sim.Techmap.Parallel;
        } );
  ]

(* ------------------------------------------------------------------ *)
(* Codec                                                               *)
(* ------------------------------------------------------------------ *)

let test_request_roundtrip () =
  List.iter
    (fun (name, req) ->
      let wire = Protocol.encode_request ~deadline_s:1.5 ~retries:2 req in
      match Protocol.decode_request wire with
      | Error e ->
          Alcotest.failf "decode(%s) failed: %s" name (Engine.error_message e)
      | Ok d ->
          Alcotest.(check string)
            (name ^ " op survives") (Engine.op_name req)
            (Engine.op_name d.Protocol.dq_request);
          Alcotest.(check (option (float 1e-9)))
            (name ^ " deadline survives") (Some 1.5) d.Protocol.dq_deadline_s;
          Alcotest.(check int)
            (name ^ " retries survive") 2 d.Protocol.dq_retries;
          (* re-encoding the decoded request reproduces the wire bytes:
             the codec loses nothing *)
          Alcotest.(check string)
            (name ^ " re-encode is stable") wire
            (Protocol.encode_request ~deadline_s:1.5 ~retries:2
               d.Protocol.dq_request))
    requests_under_test

let test_defaults_fill_in () =
  match
    Protocol.decode_request {|{"v":1,"op":"cost","source":{"inline":"x"}}|}
  with
  | Error e -> Alcotest.failf "decode failed: %s" (Engine.error_message e)
  | Ok d -> (
      Alcotest.(check (option (float 0.))) "no deadline" None
        d.Protocol.dq_deadline_s;
      Alcotest.(check int) "no retries" 0 d.Protocol.dq_retries;
      match d.Protocol.dq_request with
      | Engine.Cost { device; form; nki; optimize; calib; _ } ->
          Alcotest.(check string) "default device"
            dev.Tytra_device.Device.dev_name
            device.Tytra_device.Device.dev_name;
          Alcotest.(check string) "default form" "B"
            (Protocol.form_to_string form);
          Alcotest.(check int) "default nki" 1 nki;
          Alcotest.(check bool) "default optimize" false optimize;
          Alcotest.(check (option string)) "default calib" None calib
      | _ -> Alcotest.fail "expected a cost request")

let expect_bad_request what body =
  match Protocol.decode_request body with
  | Error (Engine.Bad_request _) -> ()
  | Error e ->
      Alcotest.failf "%s: expected Bad_request, got %s" what
        (Engine.error_kind e)
  | Ok _ -> Alcotest.failf "%s: decode accepted malformed input" what
  | exception e ->
      Alcotest.failf "%s: decode raised %s" what (Printexc.to_string e)

let test_malformed_requests () =
  List.iter
    (fun (what, body) -> expect_bad_request what body)
    [
      ("empty", "");
      ("not json", "hunter2");
      ("truncated", "{\"v\":1,");
      ("null", "null");
      ("array", "[1,2,3]");
      ("no version", {|{"op":"check","source":{"path":"x"}}|});
      ("future version", {|{"v":2,"op":"check","source":{"path":"x"}}|});
      ("no op", {|{"v":1}|});
      ("unknown op", {|{"v":1,"op":"transmogrify"}|});
      ("no source", {|{"v":1,"op":"check"}|});
      ("empty source", {|{"v":1,"op":"check","source":{}}|});
      ( "both sources",
        {|{"v":1,"op":"check","source":{"path":"x","inline":"y"}}|} );
      ("bad device", {|{"v":1,"op":"cost","source":{"path":"x"},"device":"pdp11"}|});
      ("bad form", {|{"v":1,"op":"cost","source":{"path":"x"},"form":"Z"}|});
      ("bad nki type", {|{"v":1,"op":"cost","source":{"path":"x"},"nki":"many"}|});
      ("fractional nki", {|{"v":1,"op":"cost","source":{"path":"x"},"nki":1.5}|});
      ("bad kernel", {|{"v":1,"op":"explore","kernel":"mandelbrot"}|});
      ("bad effort", {|{"v":1,"op":"synth","source":{"path":"x"},"effort":"heroic"}|});
      ("binary", "\x00\x01\xff\xfe{\"v\":1}");
    ]

(* PR-5 fuzz posture extended to the request codec: the .tirl fuzz
   corpus (nasty non-JSON bytes) plus deterministic random bytes must
   all come back as typed errors, never exceptions. *)
let corpus_dir = if Sys.file_exists "corpus" then "corpus" else "test/corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_codec_fuzz_corpus () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".tirl")
  |> List.iter (fun f ->
         let bytes = read_file (Filename.concat corpus_dir f) in
         match Protocol.decode_request bytes with
         | Ok _ | Error _ -> ()
         | exception e ->
             Alcotest.failf "decode_request raised %s on corpus %s"
               (Printexc.to_string e) f)

let codec_total_qcheck =
  QCheck.Test.make ~count:500 ~name:"decode_request is total on random bytes"
    QCheck.(string_of_size (Gen.int_bound 200))
    (fun s ->
      match Protocol.decode_request s with
      | Ok _ | Error _ -> true
      | exception _ -> false)

let test_reply_roundtrip () =
  let resp =
    {
      Engine.rs_text = "line one\nline \"two\"\n";
      rs_payload = Engine.Costed { co_ekit = 123.5; co_valid = true };
    }
  in
  (match Protocol.decode_reply (Protocol.encode_response ~op:"cost" resp) with
  | Ok (Protocol.Reply_ok { rp_op; rp_text; _ }) ->
      Alcotest.(check string) "op" "cost" rp_op;
      Alcotest.(check string) "text" resp.Engine.rs_text rp_text
  | Ok _ -> Alcotest.fail "expected an ok reply"
  | Error m -> Alcotest.failf "decode_reply failed: %s" m);
  match
    Protocol.decode_reply
      (Protocol.encode_error (Engine.Validation_error "bad port"))
  with
  | Ok (Protocol.Reply_error { re_kind; re_exit_code; re_message }) ->
      Alcotest.(check string) "kind" "validation" re_kind;
      Alcotest.(check int) "exit code" 3 re_exit_code;
      Alcotest.(check string) "message" "bad port" re_message
  | Ok _ -> Alcotest.fail "expected an error reply"
  | Error m -> Alcotest.failf "decode_reply failed: %s" m

(* ------------------------------------------------------------------ *)
(* Engine semantics                                                    *)
(* ------------------------------------------------------------------ *)

let find_existing candidates = List.find_opt Sys.file_exists candidates

let example_tirl () =
  find_existing
    [ "../../../examples/ir/sor_c2.tirl"; "examples/ir/sor_c2.tirl" ]

let tybec_exe () =
  find_existing [ "../bin/tybec.exe"; "_build/default/bin/tybec.exe" ]

let command_stdout cmd =
  let ic = Unix.open_process_in cmd in
  let b = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel b ic 1
     done
   with End_of_file -> ());
  ignore (Unix.close_process_in ic);
  Buffer.contents b

(* The byte-compatibility contract: [rs_text] is exactly what the CLI
   prints for the same request (the CLI being a print-through adapter). *)
let test_text_matches_cli () =
  match (tybec_exe (), example_tirl ()) with
  | Some tybec, Some example ->
      let eng = Engine.create Engine.default_config in
      List.iter
        (fun (verb, req) ->
          let cli =
            command_stdout
              (Printf.sprintf "%s %s %s 2>/dev/null" (Filename.quote tybec)
                 verb (Filename.quote example))
          in
          match Engine.submit eng req with
          | Ok resp ->
              Alcotest.(check string)
                (verb ^ " text = CLI stdout") cli resp.Engine.rs_text
          | Error e ->
              Alcotest.failf "%s failed: %s" verb (Engine.error_message e))
        [
          ("check", Engine.Check { source = Engine.File example });
          ( "cost",
            Engine.Cost
              {
                source = Engine.File example;
                device = dev;
                form = Tytra_cost.Throughput.FormB;
                nki = 1;
                optimize = false;
                calib = None;
              } );
          ( "sim",
            Engine.Sim
              {
                source = Engine.File example;
                device = dev;
                form = Tytra_cost.Throughput.FormB;
                nki = 1;
                optimize = false;
              } );
        ]
  | _ -> Alcotest.skip ()

let cost_inline src =
  Engine.Cost
    {
      source = Engine.Inline src;
      device = dev;
      form = Tytra_cost.Throughput.FormB;
      nki = 1;
      optimize = false;
      calib = None;
    }

let test_parse_cache_warms () =
  let eng = Engine.create Engine.default_config in
  let first =
    match Engine.submit eng (cost_inline sor_inline) with
    | Ok r -> r.Engine.rs_text
    | Error e -> Alcotest.failf "first submit: %s" (Engine.error_message e)
  in
  let s0 = Engine.parse_cache_stats eng in
  let second =
    match Engine.submit eng (cost_inline sor_inline) with
    | Ok r -> r.Engine.rs_text
    | Error e -> Alcotest.failf "second submit: %s" (Engine.error_message e)
  in
  let s1 = Engine.parse_cache_stats eng in
  Alcotest.(check string) "warm response identical" first second;
  (* an identical repeat is absorbed by the response cache one layer up:
     the parse cache must not even be consulted *)
  Alcotest.(check int) "repeat request bypasses the parse cache"
    s0.Tytra_exec.Cache.st_hits s1.Tytra_exec.Cache.st_hits;
  Alcotest.(check int) "no extra miss" s0.Tytra_exec.Cache.st_misses
    s1.Tytra_exec.Cache.st_misses;
  (* a *different* request over the same source reuses the parsed design *)
  (match
     Engine.submit eng
       (Engine.Sim
          {
            source = Engine.Inline sor_inline;
            device = dev;
            form = Tytra_cost.Throughput.FormB;
            nki = 1;
            optimize = false;
          })
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "sim submit: %s" (Engine.error_message e));
  let s2 = Engine.parse_cache_stats eng in
  Alcotest.(check int) "new request over the same source hits"
    (s1.Tytra_exec.Cache.st_hits + 1)
    s2.Tytra_exec.Cache.st_hits

let test_response_cache () =
  let eng = Engine.create Engine.default_config in
  let submit req =
    match Engine.submit eng req with
    | Ok r -> r.Engine.rs_text
    | Error e -> Alcotest.failf "submit: %s" (Engine.error_message e)
  in
  let first = submit (cost_inline sor_inline) in
  let s0 = Engine.response_cache_stats eng in
  Alcotest.(check int) "first request misses" 1 s0.Tytra_exec.Cache.st_misses;
  Alcotest.(check int) "nothing hit yet" 0 s0.Tytra_exec.Cache.st_hits;
  let second = submit (cost_inline sor_inline) in
  let s1 = Engine.response_cache_stats eng in
  Alcotest.(check string) "replayed response byte-identical" first second;
  Alcotest.(check int) "repeat request hits" 1 s1.Tytra_exec.Cache.st_hits;
  Alcotest.(check int) "no extra miss" 1 s1.Tytra_exec.Cache.st_misses;
  (* a different request (same source, different nki) must not alias *)
  let other =
    Engine.Cost
      {
        source = Engine.Inline sor_inline;
        device = dev;
        form = Tytra_cost.Throughput.FormB;
        nki = 7;
        optimize = false;
        calib = None;
      }
  in
  ignore (submit other);
  let s2 = Engine.response_cache_stats eng in
  Alcotest.(check int) "changed parameter misses" 2
    s2.Tytra_exec.Cache.st_misses;
  (* errors are never cached: same bad request misses every time *)
  (match Engine.submit eng (cost_inline "not a design") with
  | Error (Engine.Parse_error _) -> ()
  | _ -> Alcotest.fail "expected parse error");
  let s3 = Engine.response_cache_stats eng in
  Alcotest.(check int) "error response not inserted"
    s2.Tytra_exec.Cache.st_size s3.Tytra_exec.Cache.st_size

let test_typed_errors () =
  let eng = Engine.create Engine.default_config in
  (match Engine.submit eng (cost_inline "define void @f () wat { }") with
  | Error (Engine.Parse_error _ as e) ->
      Alcotest.(check int) "parse exit code" 2 (Engine.exit_code e)
  | Error e -> Alcotest.failf "expected parse error, got %s" (Engine.error_kind e)
  | Ok _ -> Alcotest.fail "garbage design was accepted");
  (let invalid =
     "%m = memobj global ui18 size 8\n\
      define void @main (ui18 %p) seq { }\n\
      @main.p = addrspace(1) ui18 !istream !cont !0 !nosuch\n"
   in
   match Engine.submit eng (cost_inline invalid) with
   | Error (Engine.Validation_error _ as e) ->
       Alcotest.(check int) "validation exit code" 3 (Engine.exit_code e)
   | Error e ->
       Alcotest.failf "expected validation error, got %s" (Engine.error_kind e)
   | Ok _ -> Alcotest.fail "invalid design was accepted");
  match
    Engine.submit eng
      (Engine.Check { source = Engine.File "/nonexistent/x.tirl" })
  with
  | Error (Engine.Parse_error _) -> ()
  | Error e -> Alcotest.failf "expected io error, got %s" (Engine.error_kind e)
  | Ok _ -> Alcotest.fail "nonexistent file was accepted"

let test_request_deadline () =
  let eng = Engine.create Engine.default_config in
  match Engine.submit ~deadline_s:0.0 eng (cost_inline sor_inline) with
  | Error (Engine.Timeout_error _ as e) ->
      Alcotest.(check string) "kind" "timeout" (Engine.error_kind e);
      Alcotest.(check int) "exit code" 1 (Engine.exit_code e)
  | Error e ->
      Alcotest.failf "expected timeout, got %s" (Engine.error_kind e)
  | Ok _ -> Alcotest.fail "expired deadline still succeeded"

(* The corpus as inline design sources through the full engine: typed
   errors or success, never an exception. *)
let test_engine_fuzz_inline () =
  let eng = Engine.create Engine.default_config in
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".tirl")
  |> List.iter (fun f ->
         let src = read_file (Filename.concat corpus_dir f) in
         match Engine.submit eng (cost_inline src) with
         | Ok _ | Error _ -> ()
         | exception e ->
             Alcotest.failf "submit raised %s on corpus %s"
               (Printexc.to_string e) f)

(* N client domains fire a mixed check/cost/explore workload at one
   warm engine; every response must be byte-identical to the
   single-threaded answer for the same request. *)
let test_concurrent_mixed_clients () =
  let eng = Engine.create Engine.default_config in
  let explore_req =
    Engine.Explore
      {
        Engine.x_kernel = Engine.Sor;
        x_size = 8;
        x_max_lanes = 4;
        x_device = dev;
        x_form = Tytra_cost.Throughput.FormB;
        x_nki = 1;
        x_jobs = 1;
        x_prune = false;
        x_retries = 0;
        x_deadline_s = None;
        x_best_effort = false;
        x_checkpoint = None;
        x_checkpoint_every = 32;
        x_resume = None;
        x_place_mode = None;
      }
  in
  let workload =
    [
      Engine.Check { source = Engine.Inline sor_inline };
      cost_inline sor_inline;
      cost_inline hotspot_inline;
      explore_req;
    ]
  in
  let expected =
    List.map
      (fun req ->
        match Engine.submit eng req with
        | Ok r -> r.Engine.rs_text
        | Error e -> Alcotest.failf "reference: %s" (Engine.error_message e))
      workload
  in
  let client () =
    List.map
      (fun req ->
        match Engine.submit eng req with
        | Ok r -> Ok r.Engine.rs_text
        | Error e -> Error (Engine.error_message e))
      workload
  in
  let domains = List.init 4 (fun _ -> Domain.spawn client) in
  List.iteri
    (fun ci d ->
      let got = Domain.join d in
      List.iteri
        (fun ri r ->
          match r with
          | Ok text ->
              Alcotest.(check string)
                (Printf.sprintf "client %d request %d deterministic" ci ri)
                (List.nth expected ri) text
          | Error m ->
              Alcotest.failf "client %d request %d failed: %s" ci ri m)
        got)
    domains

(* ------------------------------------------------------------------ *)
(* Serve loop                                                          *)
(* ------------------------------------------------------------------ *)

let read_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) -> ()
  in
  go ();
  Buffer.contents buf

let sockaddr_of sv =
  let addr = Serve.bound_addr sv in
  match String.rindex_opt addr ':' with
  | Some i ->
      let host = String.sub addr 0 i in
      let port = int_of_string (String.sub addr (i + 1) (String.length addr - i - 1)) in
      Unix.ADDR_INET (Unix.inet_addr_of_string host, port)
  | None -> Alcotest.failf "unparseable bound addr %s" addr

let http_request sockaddr meth path body =
  let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd sockaddr;
      let req =
        Printf.sprintf "%s %s HTTP/1.0\r\nHost: t\r\nContent-Length: %d\r\n\r\n%s"
          meth path (String.length body) body
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      read_all fd)

let body_of raw =
  let rec find i =
    if i + 3 >= String.length raw then String.length raw
    else if raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
            && raw.[i + 3] = '\n'
    then i + 4
    else find (i + 1)
  in
  let s = find 0 in
  String.sub raw s (String.length raw - s)

let status_of raw =
  match String.split_on_char ' ' raw with
  | _ :: code :: _ -> int_of_string code
  | _ -> Alcotest.failf "unparseable status line in %S" raw

let with_server ?(workers = 2) ?(queue_cap = 64) ?handler ?streamer f =
  let was = Tytra_telemetry.Metrics.snapshot in
  ignore was;
  Tytra_telemetry.Control.set_enabled true;
  let handler, streamer =
    match handler with
    | Some h -> (h, Option.value streamer ~default:(fun _ -> None))
    | None ->
        let eng = Engine.create Engine.default_config in
        ( Daemon.handler eng,
          Option.value streamer ~default:(Daemon.streamer eng) )
  in
  let sv =
    Serve.start ~handler ~streamer ~workers ~queue_cap ~addr:"127.0.0.1:0" ()
  in
  Fun.protect
    ~finally:(fun () ->
      Serve.stop sv;
      Tytra_telemetry.Control.set_enabled false)
    (fun () -> f sv)

let test_serve_submit_roundtrip () =
  with_server @@ fun sv ->
  let sa = sockaddr_of sv in
  let eng = Engine.create Engine.default_config in
  let req = Engine.Check { source = Engine.Inline sor_inline } in
  let direct =
    match Engine.submit eng req with
    | Ok r -> r.Engine.rs_text
    | Error e -> Alcotest.failf "direct submit: %s" (Engine.error_message e)
  in
  let raw =
    http_request sa "POST" "/v1/submit" (Protocol.encode_request req)
  in
  Alcotest.(check int) "200" 200 (status_of raw);
  (match Protocol.decode_reply (body_of raw) with
  | Ok (Protocol.Reply_ok { rp_op; rp_text; _ }) ->
      Alcotest.(check string) "op" "check" rp_op;
      Alcotest.(check string) "served text = direct text" direct rp_text
  | Ok _ -> Alcotest.fail "expected ok reply"
  | Error m -> Alcotest.failf "reply decode: %s" m);
  (* observability rides the same port *)
  let health = http_request sa "GET" "/healthz" "" in
  Alcotest.(check int) "healthz" 200 (status_of health);
  let metrics = http_request sa "GET" "/metrics" "" in
  Alcotest.(check int) "metrics" 200 (status_of metrics)

let test_serve_malformed_is_typed () =
  with_server @@ fun sv ->
  let sa = sockaddr_of sv in
  List.iter
    (fun body ->
      let raw = http_request sa "POST" "/v1/submit" body in
      Alcotest.(check int) ("400 for " ^ String.escaped body) 400
        (status_of raw);
      match Protocol.decode_reply (body_of raw) with
      | Ok (Protocol.Reply_error { re_kind; _ }) ->
          Alcotest.(check string) "typed kind" "bad_request" re_kind
      | Ok _ -> Alcotest.fail "expected error reply"
      | Error m -> Alcotest.failf "reply decode: %s" m)
    [ ""; "not json"; "{\"v\":9,\"op\":\"check\"}"; "{\"v\":1}" ];
  (* a design that fails validation is a 422 with the library message *)
  let invalid =
    "%m = memobj global ui18 size 8\n\
     define void @main (ui18 %p) seq { }\n\
     @main.p = addrspace(1) ui18 !istream !cont !0 !nosuch\n"
  in
  let raw =
    http_request sa "POST" "/v1/submit"
      (Protocol.encode_request (cost_inline invalid))
  in
  Alcotest.(check int) "422" 422 (status_of raw);
  match Protocol.decode_reply (body_of raw) with
  | Ok (Protocol.Reply_error { re_kind; re_exit_code; _ }) ->
      Alcotest.(check string) "kind" "validation" re_kind;
      Alcotest.(check int) "exit code" 3 re_exit_code
  | Ok _ -> Alcotest.fail "expected error reply"
  | Error m -> Alcotest.failf "reply decode: %s" m

(* Admission control: with one worker parked in a handler and a
   one-slot queue, a burst must shed deterministic 429s. *)
let test_serve_backpressure () =
  let gate_m = Mutex.create () in
  let gate_c = Condition.create () in
  let open_ = ref false in
  let arrived = ref 0 in
  let gate_handler (_ : Serve.request) =
    Mutex.lock gate_m;
    incr arrived;
    Condition.broadcast gate_c;
    while not !open_ do
      Condition.wait gate_c gate_m
    done;
    Mutex.unlock gate_m;
    Some { Serve.rs_status = 200; rs_content_type = "text/plain"; rs_body = "done\n" }
  in
  with_server ~workers:1 ~queue_cap:1 ~handler:gate_handler @@ fun sv ->
  let sa = sockaddr_of sv in
  let client () = http_request sa "GET" "/x" "" in
  (* first request occupies the worker *)
  let c1 = Domain.spawn client in
  Mutex.lock gate_m;
  while !arrived < 1 do
    Condition.wait gate_c gate_m
  done;
  Mutex.unlock gate_m;
  (* burst: with the worker busy and queue_cap 1, at least one of these
     must be answered 429 without ever reaching the handler *)
  let burst = List.init 4 (fun _ -> Domain.spawn client) in
  let rec wait_rejected tries =
    if Serve.requests_rejected sv >= 1 then ()
    else if tries = 0 then Alcotest.fail "no request was shed"
    else begin
      Unix.sleepf 0.02;
      wait_rejected (tries - 1)
    end
  in
  wait_rejected 250;
  Mutex.lock gate_m;
  open_ := true;
  Condition.broadcast gate_c;
  Mutex.unlock gate_m;
  let replies = List.map Domain.join (c1 :: burst) in
  let ok = List.length (List.filter (fun r -> status_of r = 200) replies) in
  let shed = List.length (List.filter (fun r -> status_of r = 429) replies) in
  Alcotest.(check int) "every client got an answer" 5 (ok + shed);
  Alcotest.(check bool) "some requests served" true (ok >= 2);
  Alcotest.(check bool) "some requests shed" true (shed >= 1)

(* Graceful drain: stop() while requests are parked inside handlers
   must answer all of them before returning. *)
let test_serve_drain_answers_inflight () =
  let gate_m = Mutex.create () in
  let gate_c = Condition.create () in
  let open_ = ref false in
  let arrived = ref 0 in
  let gate_handler (_ : Serve.request) =
    Mutex.lock gate_m;
    incr arrived;
    Condition.broadcast gate_c;
    while not !open_ do
      Condition.wait gate_c gate_m
    done;
    Mutex.unlock gate_m;
    Some { Serve.rs_status = 200; rs_content_type = "text/plain"; rs_body = "drained\n" }
  in
  Tytra_telemetry.Control.set_enabled true;
  let sv =
    Serve.start ~handler:gate_handler ~workers:3 ~queue_cap:8
      ~addr:"127.0.0.1:0" ()
  in
  let sa = sockaddr_of sv in
  let clients =
    List.init 3 (fun _ -> Domain.spawn (fun () -> http_request sa "GET" "/x" ""))
  in
  (* all three requests are inside handlers now *)
  Mutex.lock gate_m;
  while !arrived < 3 do
    Condition.wait gate_c gate_m
  done;
  Mutex.unlock gate_m;
  let stopper = Domain.spawn (fun () -> Serve.stop sv) in
  (* the drain must be blocked on the in-flight requests; release them *)
  Unix.sleepf 0.05;
  Mutex.lock gate_m;
  open_ := true;
  Condition.broadcast gate_c;
  Mutex.unlock gate_m;
  Domain.join stopper;
  List.iter
    (fun c ->
      let raw = Domain.join c in
      Alcotest.(check int) "drained request answered 200" 200 (status_of raw);
      Alcotest.(check bool) "body delivered" true
        (body_of raw = "drained\n"))
    clients;
  Alcotest.(check int) "all three served" 3 (Serve.requests_served sv);
  Tytra_telemetry.Control.set_enabled false

(* ------------------------------------------------------------------ *)
(* Batching                                                            *)
(* ------------------------------------------------------------------ *)

module Batcher = Tytra_engine.Batcher

let counter name =
  Option.value ~default:0.0 (Tytra_telemetry.Metrics.counter_value name)

let with_metrics f =
  Tytra_telemetry.Control.set_enabled true;
  Fun.protect ~finally:(fun () -> Tytra_telemetry.Control.set_enabled false) f

(* A batch of five requests with three distinct digests: the batch path
   must dedup the duplicates, dispatch once per group, and hand back
   byte-identical results in submission order. *)
let test_submit_batch_identity () =
  with_metrics @@ fun () ->
  let workload =
    [
      Engine.Check { source = Engine.Inline sor_inline };
      cost_inline sor_inline;
      cost_inline hotspot_inline;
      cost_inline sor_inline;
      Engine.Check { source = Engine.Inline sor_inline };
    ]
  in
  let reference =
    let eng = Engine.create Engine.default_config in
    List.map
      (fun req ->
        match Engine.submit eng req with
        | Ok r -> r.Engine.rs_text
        | Error e -> Alcotest.failf "reference: %s" (Engine.error_message e))
      workload
  in
  let eng = Engine.create Engine.default_config in
  let requests0 = counter "engine.batch.requests" in
  let dispatches0 = counter "engine.batch.dispatches" in
  let dedup0 = counter "engine.batch.dedup_hits" in
  let results = Engine.submit_batch eng (List.map Engine.batch_item workload) in
  Alcotest.(check int) "one result per item" (List.length workload)
    (List.length results);
  List.iteri
    (fun i r ->
      match r with
      | Ok resp ->
          Alcotest.(check string)
            (Printf.sprintf "item %d byte-identical to sequential" i)
            (List.nth reference i) resp.Engine.rs_text
      | Error e ->
          Alcotest.failf "item %d failed: %s" i (Engine.error_message e))
    results;
  Alcotest.(check (float 0.)) "batch counted all items" 5.0
    (counter "engine.batch.requests" -. requests0);
  Alcotest.(check (float 0.)) "one dispatch" 1.0
    (counter "engine.batch.dispatches" -. dispatches0);
  Alcotest.(check (float 0.)) "two duplicates coalesced" 2.0
    (counter "engine.batch.dedup_hits" -. dedup0);
  (* a second identical batch is absorbed by the response cache: one
     exact hit per dispatched group, nothing recomputed *)
  let s0 = Engine.response_cache_stats eng in
  let again = Engine.submit_batch eng (List.map Engine.batch_item workload) in
  List.iteri
    (fun i r ->
      match r with
      | Ok resp ->
          Alcotest.(check string)
            (Printf.sprintf "replayed item %d identical" i)
            (List.nth reference i) resp.Engine.rs_text
      | Error e ->
          Alcotest.failf "replayed item %d failed: %s" i
            (Engine.error_message e))
    again;
  let s1 = Engine.response_cache_stats eng in
  Alcotest.(check int) "one response-cache hit per group" 3
    (s1.Tytra_exec.Cache.st_hits - s0.Tytra_exec.Cache.st_hits);
  Alcotest.(check int) "no new miss"
    s0.Tytra_exec.Cache.st_misses s1.Tytra_exec.Cache.st_misses

(* A poisoned item in the middle of a batch fails alone: its neighbours
   still succeed, and positions are preserved. *)
let test_submit_batch_error_isolation () =
  let eng = Engine.create Engine.default_config in
  let items =
    [
      Engine.batch_item (cost_inline sor_inline);
      Engine.batch_item (cost_inline "this is not a design");
      Engine.batch_item (cost_inline hotspot_inline);
    ]
  in
  match Engine.submit_batch eng items with
  | [ Ok _; Error (Engine.Parse_error _); Ok _ ] -> ()
  | [ a; b; c ] ->
      let show = function
        | Ok _ -> "ok"
        | Error e -> "error:" ^ Engine.error_kind e
      in
      Alcotest.failf "wrong shape: [%s; %s; %s]" (show a) (show b) (show c)
  | l -> Alcotest.failf "expected 3 results, got %d" (List.length l)

(* Four concurrent clients submitting the same request through the
   batcher must coalesce into a single dispatch of a single group, and
   a stopped batcher sheds deterministically. *)
let test_batcher_coalesces () =
  with_metrics @@ fun () ->
  let eng = Engine.create Engine.default_config in
  let b = Batcher.create ~window_ms:500.0 ~max_size:4 eng in
  let dispatches0 = counter "engine.batch.dispatches" in
  let dedup0 = counter "engine.batch.dedup_hits" in
  let req = cost_inline sor_inline in
  let clients =
    List.init 4 (fun _ -> Domain.spawn (fun () -> Batcher.submit b req))
  in
  let results = List.map Domain.join clients in
  let texts =
    List.map
      (function
        | Ok r -> r.Engine.rs_text
        | Error e -> Alcotest.failf "batched submit: %s" (Engine.error_message e))
      results
  in
  (match texts with
  | first :: rest ->
      List.iter
        (fun t -> Alcotest.(check string) "coalesced answers identical" first t)
        rest
  | [] -> Alcotest.fail "no results");
  Alcotest.(check (float 0.)) "single dispatch for the burst" 1.0
    (counter "engine.batch.dispatches" -. dispatches0);
  Alcotest.(check (float 0.)) "three duplicates deduped" 3.0
    (counter "engine.batch.dedup_hits" -. dedup0);
  Batcher.stop b;
  (* stop is idempotent and post-stop submissions are shed, not queued *)
  Batcher.stop b;
  let rejected0 = counter "engine.batch.rejected" in
  (match Batcher.submit b req with
  | Error Engine.Overloaded -> ()
  | Error e ->
      Alcotest.failf "expected overloaded, got %s" (Engine.error_kind e)
  | Ok _ -> Alcotest.fail "stopped batcher accepted a request");
  Alcotest.(check (float 0.)) "shed request counted" 1.0
    (counter "engine.batch.rejected" -. rejected0)

(* ------------------------------------------------------------------ *)
(* Streamed progress over the wire                                     *)
(* ------------------------------------------------------------------ *)

let test_serve_streamed_explore () =
  let explore_req =
    Engine.Explore
      {
        Engine.x_kernel = Engine.Sor;
        x_size = 8;
        x_max_lanes = 4;
        x_device = dev;
        x_form = Tytra_cost.Throughput.FormB;
        x_nki = 1;
        x_jobs = 1;
        x_prune = false;
        x_retries = 0;
        x_deadline_s = None;
        x_best_effort = false;
        x_checkpoint = None;
        x_checkpoint_every = 32;
        x_resume = None;
        x_place_mode = None;
      }
  in
  let direct =
    let eng = Engine.create Engine.default_config in
    match Engine.submit eng explore_req with
    | Ok r -> r.Engine.rs_text
    | Error e -> Alcotest.failf "direct explore: %s" (Engine.error_message e)
  in
  with_server @@ fun sv ->
  let sa = sockaddr_of sv in
  let raw =
    http_request sa "POST" "/v1/submit"
      (Protocol.encode_request ~stream:true explore_req)
  in
  Alcotest.(check int) "streamed 200" 200 (status_of raw);
  let frames =
    body_of raw |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
    |> List.map (fun line ->
           match Protocol.decode_frame line with
           | Ok f -> f
           | Error m -> Alcotest.failf "frame decode: %s in %S" m line)
  in
  let progress, results =
    List.partition
      (function Protocol.Frame_progress _ -> true | _ -> false)
      frames
  in
  Alcotest.(check bool) "at least one progress frame" true
    (List.length progress >= 1);
  List.iter
    (function
      | Protocol.Frame_progress p ->
          Alcotest.(check string) "progress op" "explore" p.Protocol.pf_op;
          Alcotest.(check bool) "evaluated within space" true
            (p.Protocol.pf_evaluated <= p.Protocol.pf_space)
      | _ -> ())
    progress;
  (match results with
  | [ Protocol.Frame_result (Protocol.Reply_ok { rp_op; rp_text; _ }) ] ->
      Alcotest.(check string) "result op" "explore" rp_op;
      Alcotest.(check string) "streamed result = direct text" direct rp_text
  | _ -> Alcotest.failf "expected exactly one ok result frame, got %d"
           (List.length results));
  (* the result frame is the last line of the stream *)
  match List.rev frames with
  | Protocol.Frame_result _ :: _ -> ()
  | _ -> Alcotest.fail "stream did not end with the result frame"

(* A non-streamed request through the same server must be unaffected by
   the streaming path: plain framed JSON, no progress lines. *)
let test_serve_stream_flag_opt_in () =
  with_server @@ fun sv ->
  let sa = sockaddr_of sv in
  let req = Engine.Check { source = Engine.Inline sor_inline } in
  let raw = http_request sa "POST" "/v1/submit" (Protocol.encode_request req) in
  Alcotest.(check int) "200" 200 (status_of raw);
  let body = String.trim (body_of raw) in
  Alcotest.(check bool) "single-line body" true
    (not (String.contains body '\n'));
  match Protocol.decode_frame body with
  | Ok (Protocol.Frame_result (Protocol.Reply_ok { rp_op; _ })) ->
      Alcotest.(check string) "op" "check" rp_op
  | Ok _ -> Alcotest.fail "expected a result frame"
  | Error m -> Alcotest.failf "frame decode: %s" m

(* ------------------------------------------------------------------ *)
(* Response cache under concurrency                                    *)
(* ------------------------------------------------------------------ *)

(* Deterministic LRU phase with capacity 2, then a 4-domain storm: the
   stats must stay exact — every cacheable submit is exactly one hit or
   one miss, never both, never neither. *)
let test_response_cache_concurrent () =
  let eng =
    Engine.create { Engine.default_config with response_cache_capacity = 2 }
  in
  let a = Engine.Check { source = Engine.Inline sor_inline } in
  let b = Engine.Check { source = Engine.Inline hotspot_inline } in
  let c = Engine.Check { source = Engine.Inline (sor_inline ^ "\n") } in
  let submit req =
    match Engine.submit eng req with
    | Ok r -> r.Engine.rs_text
    | Error e -> Alcotest.failf "submit: %s" (Engine.error_message e)
  in
  (* a,b fill the cache; c evicts a; b touches b; a evicts c *)
  let ta = submit a in
  let tb = submit b in
  ignore (submit c);
  ignore (submit b);
  ignore (submit a);
  let s = Engine.response_cache_stats eng in
  Alcotest.(check int) "hits after LRU phase" 1 s.Tytra_exec.Cache.st_hits;
  Alcotest.(check int) "misses after LRU phase" 4 s.Tytra_exec.Cache.st_misses;
  Alcotest.(check int) "evictions after LRU phase" 2
    s.Tytra_exec.Cache.st_evictions;
  Alcotest.(check int) "size capped" 2 s.Tytra_exec.Cache.st_size;
  (* storm: 4 domains × 8 submits over {a,b}; the cache may interleave
     arbitrarily but the accounting must balance exactly *)
  let storm () =
    List.init 8 (fun i ->
        let req, expect = if i mod 2 = 0 then (a, ta) else (b, tb) in
        (submit req, expect))
  in
  let domains = List.init 4 (fun _ -> Domain.spawn storm) in
  List.iter
    (fun d ->
      List.iter
        (fun (got, expect) ->
          Alcotest.(check string) "storm answer byte-identical" expect got)
        (Domain.join d))
    domains;
  let s' = Engine.response_cache_stats eng in
  Alcotest.(check int) "every storm submit counted exactly once" 32
    (s'.Tytra_exec.Cache.st_hits + s'.Tytra_exec.Cache.st_misses
    - s.Tytra_exec.Cache.st_hits - s.Tytra_exec.Cache.st_misses);
  Alcotest.(check bool) "size still capped" true
    (s'.Tytra_exec.Cache.st_size <= 2)

(* ------------------------------------------------------------------ *)
(* Batch-window spec parsing                                           *)
(* ------------------------------------------------------------------ *)

let test_parse_batch_spec () =
  let check spec expected =
    let show = function
      | None -> "off"
      | Some (w, m) -> Printf.sprintf "%g:%d" w m
    in
    Alcotest.(check string)
      (Printf.sprintf "spec %S" spec)
      (show expected)
      (show (Daemon.parse_batch_spec spec))
  in
  check "off" None;
  check "0" None;
  check "" None;
  check "no" None;
  check "false" None;
  check "2" (Some (2.0, 16));
  check "2.5" (Some (2.5, 16));
  check "2:32" (Some (2.0, 32));
  check "0.5:8" (Some (0.5, 8));
  check "garbage" None;
  check "-1" None;
  check "2:0" None

(* ------------------------------------------------------------------ *)
(* Deadline propagation (protocol minor 2)                             *)
(* ------------------------------------------------------------------ *)

let test_deadline_ms_codec () =
  (* deadline_ms decodes to a unified budget in seconds *)
  (match
     Protocol.decode_request
       {|{"v":1,"op":"check","source":{"inline":"x"},"deadline_ms":1500}|}
   with
  | Ok d ->
      Alcotest.(check (option (float 1e-9)))
        "deadline_ms 1500 = 1.5s" (Some 1.5) d.Protocol.dq_deadline_s
  | Error e -> Alcotest.failf "decode failed: %s" (Engine.error_message e));
  (* deadline_ms wins over the legacy deadline_s when both are present *)
  (match
     Protocol.decode_request
       {|{"v":1,"op":"check","source":{"inline":"x"},"deadline_s":9,"deadline_ms":250}|}
   with
  | Ok d ->
      Alcotest.(check (option (float 1e-9)))
        "deadline_ms beats deadline_s" (Some 0.25) d.Protocol.dq_deadline_s
  | Error e -> Alcotest.failf "decode failed: %s" (Engine.error_message e));
  (* the encoder round-trips the new field *)
  let req = Engine.Check { source = Engine.Inline "x" } in
  (match Protocol.decode_request (Protocol.encode_request ~deadline_ms:320.0 req) with
  | Ok d ->
      Alcotest.(check (option (float 1e-9)))
        "encode ~deadline_ms round-trips" (Some 0.32) d.Protocol.dq_deadline_s
  | Error e -> Alcotest.failf "decode failed: %s" (Engine.error_message e));
  (* malformed budgets are typed errors, not crashes or silent drops *)
  expect_bad_request "string deadline_ms"
    {|{"v":1,"op":"check","source":{"inline":"x"},"deadline_ms":"soon"}|};
  (* minor-version backward compatibility: a frame with no deadline
     fields at all (an old minor-0 client) still decodes *)
  match
    Protocol.decode_request {|{"v":1,"op":"check","source":{"inline":"x"}}|}
  with
  | Ok d ->
      Alcotest.(check (option (float 0.)))
        "old client: no budget" None d.Protocol.dq_deadline_s;
      Alcotest.(check bool) "minor version advertises deadlines" true
        (Protocol.version_minor >= 2)
  | Error e -> Alcotest.failf "decode failed: %s" (Engine.error_message e)

(* Fuzz posture for the new fields: any combination of budget fields
   (valid numbers, junk, absent) must decode totally, and when both
   valid budgets are present the unified rule (ms preferred) holds. *)
let deadline_fuzz_qcheck =
  QCheck.Test.make ~count:300 ~name:"deadline fields decode totally"
    QCheck.(pair (option (float_bound_exclusive 1e6)) (option (float_bound_exclusive 1e6)))
    (fun (s, ms) ->
      let field name = function
        | None -> ""
        | Some v -> Printf.sprintf {|,"%s":%.6f|} name v
      in
      let body =
        Printf.sprintf
          {|{"v":1,"op":"check","source":{"inline":"x"}%s%s}|}
          (field "deadline_s" s) (field "deadline_ms" ms)
      in
      match Protocol.decode_request body with
      | Error _ -> false
      | Ok d -> (
          let expect =
            match (ms, s) with
            | Some m, _ -> Some (m /. 1000.0)
            | None, other -> other
          in
          match (d.Protocol.dq_deadline_s, expect) with
          | None, None -> true
          | Some a, Some b -> Float.abs (a -. b) <= 1e-9 *. Float.max 1.0 b
          | _ -> false))

let test_new_error_kinds () =
  let cases =
    [
      (Engine.Deadline_exceeded 0.25, "deadline_exceeded", 1, 504);
      (Engine.Request_too_large 8_388_608, "request_too_large", 2, 413);
    ]
  in
  List.iter
    (fun (err, kind, exit_code, status) ->
      Alcotest.(check string) "kind" kind (Engine.error_kind err);
      Alcotest.(check int) "exit code" exit_code (Engine.exit_code err);
      Alcotest.(check int) "http status" status (Protocol.http_status err);
      match Protocol.decode_reply (Protocol.encode_error err) with
      | Ok (Protocol.Reply_error { re_kind; re_exit_code; _ }) ->
          Alcotest.(check string) "wire kind" kind re_kind;
          Alcotest.(check int) "wire exit code" exit_code re_exit_code
      | Ok _ -> Alcotest.fail "expected an error reply"
      | Error m -> Alcotest.failf "decode_reply failed: %s" m)
    cases

(* Admission: a budget no larger than the batch window can never be
   answered in time and is refused up front, typed. *)
let test_batcher_deadline_admission () =
  with_metrics @@ fun () ->
  let eng = Engine.create Engine.default_config in
  let b = Batcher.create ~window_ms:50.0 ~max_size:4 eng in
  Fun.protect
    ~finally:(fun () -> Batcher.stop b)
    (fun () ->
      let rejected0 = counter "engine.batch.deadline_rejected" in
      (match Batcher.submit ~deadline_s:0.01 b (cost_inline sor_inline) with
      | Error (Engine.Deadline_exceeded budget) ->
          Alcotest.(check (float 1e-9)) "typed budget" 0.01 budget
      | Error e ->
          Alcotest.failf "expected Deadline_exceeded, got %s"
            (Engine.error_kind e)
      | Ok _ -> Alcotest.fail "under-budget request was admitted");
      Alcotest.(check (float 0.)) "rejection counted" 1.0
        (counter "engine.batch.deadline_rejected" -. rejected0);
      (* an ample budget sails through the same batcher *)
      match Batcher.submit ~deadline_s:30.0 b (cost_inline sor_inline) with
      | Ok _ -> ()
      | Error e ->
          Alcotest.failf "ample budget refused: %s" (Engine.error_message e))

(* Queued expiry, deterministically: the dispatcher is pinned inside a
   [submit_batch] evaluation that blocks opening a FIFO nobody writes
   to; a request parked behind it expires while waiting and must be
   answered with a typed [Deadline_exceeded] instead of being
   evaluated late. *)
let test_batcher_deadline_expiry () =
  with_metrics @@ fun () ->
  let fifo =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tytra-test-fifo-%d" (Unix.getpid ()))
  in
  (try Unix.unlink fifo with Unix.Unix_error _ -> ());
  Unix.mkfifo fifo 0o600;
  Fun.protect
    ~finally:(fun () -> try Unix.unlink fifo with Unix.Unix_error _ -> ())
    (fun () ->
      let eng = Engine.create Engine.default_config in
      let b = Batcher.create ~window_ms:0.0 ~max_size:1 eng in
      let expired0 = counter "engine.batch.deadline_expired" in
      (* the blocker: Check on the FIFO stalls its dispatch until we
         feed the pipe *)
      let blocker =
        Domain.spawn (fun () ->
            Batcher.submit b (Engine.Check { source = Engine.File fifo }))
      in
      (* wait until the dispatcher is actually stuck in the open() *)
      Unix.sleepf 0.2;
      let victim =
        Domain.spawn (fun () ->
            Batcher.submit ~deadline_s:0.05 b (cost_inline sor_inline))
      in
      (* let the victim's budget run out while it is parked *)
      Unix.sleepf 0.3;
      (* unblock the dispatcher: hold the FIFO open read+write for the
         rest of the test so every engine open of it succeeds at once
         (the engine may open the source more than once — digest and
         parse) and each read sees an empty source, answered typed *)
      let wfd = Unix.openfile fifo [ Unix.O_RDWR ] 0 in
      let victim_result = Domain.join victim in
      let blocker_result = Domain.join blocker in
      Batcher.stop b;
      Unix.close wfd;
      (match victim_result with
      | Error (Engine.Deadline_exceeded budget) ->
          Alcotest.(check (float 1e-9)) "typed with its budget" 0.05 budget
      | Error e ->
          Alcotest.failf "expected Deadline_exceeded, got %s"
            (Engine.error_kind e)
      | Ok _ -> Alcotest.fail "expired request was evaluated anyway");
      Alcotest.(check (float 0.)) "expiry counted" 1.0
        (counter "engine.batch.deadline_expired" -. expired0);
      (* the blocker itself must still get a typed answer, not a hang *)
      match blocker_result with
      | Ok _ | Error _ -> ())

(* ------------------------------------------------------------------ *)
(* Crash-safe warm state: the response-cache journal                   *)
(* ------------------------------------------------------------------ *)

module Journal = Tytra_engine.Journal

let temp_journal () =
  Filename.temp_file "tytra-journal" ".jsonl"

let test_journal_roundtrip () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      (* payloads are opaque bytes: binary, newlines, quotes must all
         survive the hex framing *)
      let entries =
        [ ("k1", "plain"); ("k2", "line\nbreak \"quoted\""); ("k3", "\x00\xff\x01") ]
      in
      (match Journal.open_append path with
      | None -> Alcotest.fail "open_append refused a writable path"
      | Some j ->
          List.iter (fun (key, payload) -> Journal.append j ~key ~payload) entries;
          Alcotest.(check int) "appended counted" 3 (Journal.appended j);
          Alcotest.(check int) "no write errors" 0 (Journal.write_errors j);
          Journal.close j);
      let loaded, skipped = Journal.load path in
      Alcotest.(check int) "no skips" 0 skipped;
      Alcotest.(check (list (pair string string))) "entries survive" entries
        loaded;
      (* reopening appends after the existing entries *)
      (match Journal.open_append path with
      | None -> Alcotest.fail "reopen failed"
      | Some j ->
          Journal.append j ~key:"k4" ~payload:"late";
          Journal.close j);
      let loaded2, skipped2 = Journal.load path in
      Alcotest.(check int) "still no skips" 0 skipped2;
      Alcotest.(check int) "append extended" 4 (List.length loaded2))

let test_journal_tolerates_corruption () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      (match Journal.open_append path with
      | None -> Alcotest.fail "open_append refused a writable path"
      | Some j ->
          Journal.append j ~key:"good" ~payload:"payload";
          Journal.close j);
      (* a torn tail from a crash mid-write, then a digest mismatch *)
      let oc = open_out_gen [ Open_append ] 0o600 path in
      output_string oc "{\"v\":1,\"key\":\"torn";
      close_out oc;
      let loaded, skipped = Journal.load path in
      Alcotest.(check int) "torn tail skipped" 1 skipped;
      Alcotest.(check (list (pair string string))) "good entry survives"
        [ ("good", "payload") ] loaded;
      (* a file that is not a journal at all: nothing loads, everything
         is accounted as skipped, nothing raises *)
      let foreign = temp_journal () in
      Fun.protect
        ~finally:(fun () -> try Sys.remove foreign with Sys_error _ -> ())
        (fun () ->
          let oc = open_out foreign in
          output_string oc "not a journal\nat all\n";
          close_out oc;
          let loaded, skipped = Journal.load foreign in
          Alcotest.(check int) "foreign file loads nothing" 0
            (List.length loaded);
          Alcotest.(check bool) "foreign lines accounted" true (skipped >= 1));
      (* a missing file is an empty journal, not an error *)
      let missing, missing_skipped = Journal.load "/nonexistent/journal" in
      Alcotest.(check int) "missing file: empty" 0 (List.length missing);
      Alcotest.(check int) "missing file: no skips" 0 missing_skipped)

(* The end-to-end warm-state contract: engine 2, created over engine
   1's journal, serves engine 1's request as a cache HIT with byte-
   identical text — the E10 warm path survives a process death. *)
let test_journal_replays_into_fresh_engine () =
  let path = temp_journal () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Sys.remove path;
      let config = { Engine.default_config with cache_journal = Some path } in
      let req = cost_inline hotspot_inline in
      let first =
        let eng1 = Engine.create config in
        match Engine.submit eng1 req with
        | Ok r -> r.Engine.rs_text
        | Error e -> Alcotest.failf "first submit: %s" (Engine.error_message e)
      in
      let eng2 = Engine.create config in
      let stats0 = Engine.response_cache_stats eng2 in
      Alcotest.(check bool) "journal pre-warmed the fresh cache" true
        (stats0.Tytra_exec.Cache.st_size >= 1);
      (match Engine.submit eng2 req with
      | Ok r ->
          Alcotest.(check string) "warm answer byte-identical" first
            r.Engine.rs_text
      | Error e -> Alcotest.failf "warm submit: %s" (Engine.error_message e));
      let stats1 = Engine.response_cache_stats eng2 in
      Alcotest.(check int) "served as a hit" 1
        (stats1.Tytra_exec.Cache.st_hits - stats0.Tytra_exec.Cache.st_hits);
      Alcotest.(check int) "not re-evaluated" 0
        (stats1.Tytra_exec.Cache.st_misses - stats0.Tytra_exec.Cache.st_misses))

(* Typed wire errors: statuses the server chooses before the protocol
   layer ever runs must still answer protocol JSON. *)
let test_wire_error_responder () =
  List.iter
    (fun (status, kind) ->
      match Daemon.wire_error status with
      | None -> Alcotest.failf "no wire response for %d" status
      | Some r -> (
          Alcotest.(check int) "status preserved" status r.Serve.rs_status;
          match Protocol.decode_reply r.Serve.rs_body with
          | Ok (Protocol.Reply_error { re_kind; _ }) ->
              Alcotest.(check string)
                (Printf.sprintf "kind for %d" status)
                kind re_kind
          | Ok _ -> Alcotest.fail "expected an error reply"
          | Error m -> Alcotest.failf "untyped body for %d: %s" status m))
    [
      (400, "bad_request");
      (408, "bad_request");
      (413, "request_too_large");
      (429, "overloaded");
    ];
  Alcotest.(check bool) "unknown statuses fall through" true
    (Daemon.wire_error 500 = None)

let suite =
  [
    Alcotest.test_case "request codec round-trips" `Quick
      test_request_roundtrip;
    Alcotest.test_case "decode fills CLI defaults" `Quick
      test_defaults_fill_in;
    Alcotest.test_case "malformed requests are typed errors" `Quick
      test_malformed_requests;
    Alcotest.test_case "request codec total on fuzz corpus" `Quick
      test_codec_fuzz_corpus;
    QCheck_alcotest.to_alcotest codec_total_qcheck;
    Alcotest.test_case "reply codec round-trips" `Quick test_reply_roundtrip;
    Alcotest.test_case "engine text = CLI stdout" `Slow test_text_matches_cli;
    Alcotest.test_case "parse cache warms repeat requests" `Quick
      test_parse_cache_warms;
    Alcotest.test_case "response cache replays full requests" `Quick
      test_response_cache;
    Alcotest.test_case "typed errors carry CLI exit codes" `Quick
      test_typed_errors;
    Alcotest.test_case "request deadline is enforced" `Quick
      test_request_deadline;
    Alcotest.test_case "engine total on corpus as inline sources" `Quick
      test_engine_fuzz_inline;
    Alcotest.test_case "concurrent mixed clients are deterministic" `Slow
      test_concurrent_mixed_clients;
    Alcotest.test_case "serve: submit round-trip + observability" `Quick
      test_serve_submit_roundtrip;
    Alcotest.test_case "serve: malformed bodies are typed 400s" `Quick
      test_serve_malformed_is_typed;
    Alcotest.test_case "serve: full queue sheds 429" `Quick
      test_serve_backpressure;
    Alcotest.test_case "serve: drain answers in-flight requests" `Quick
      test_serve_drain_answers_inflight;
    Alcotest.test_case "batch: dedup + byte-identity + exact counters" `Slow
      test_submit_batch_identity;
    Alcotest.test_case "batch: errors are isolated per item" `Quick
      test_submit_batch_error_isolation;
    Alcotest.test_case "batcher: concurrent burst coalesces to one dispatch"
      `Slow test_batcher_coalesces;
    Alcotest.test_case "serve: streamed explore emits progress frames" `Slow
      test_serve_streamed_explore;
    Alcotest.test_case "serve: streaming is strictly opt-in" `Quick
      test_serve_stream_flag_opt_in;
    Alcotest.test_case "response cache: exact stats under a 4-domain storm"
      `Slow test_response_cache_concurrent;
    Alcotest.test_case "TYTRA_BATCH spec parsing" `Quick test_parse_batch_spec;
    Alcotest.test_case "deadline_ms codec: precedence + back-compat" `Quick
      test_deadline_ms_codec;
    QCheck_alcotest.to_alcotest deadline_fuzz_qcheck;
    Alcotest.test_case "deadline_exceeded/request_too_large are typed" `Quick
      test_new_error_kinds;
    Alcotest.test_case "batcher: hopeless budgets refused at admission" `Quick
      test_batcher_deadline_admission;
    Alcotest.test_case "batcher: queued requests expire typed" `Slow
      test_batcher_deadline_expiry;
    Alcotest.test_case "journal: append/load round-trip" `Quick
      test_journal_roundtrip;
    Alcotest.test_case "journal: torn tails and foreign files tolerated" `Quick
      test_journal_tolerates_corruption;
    Alcotest.test_case "journal: warm state survives engine restart" `Quick
      test_journal_replays_into_fresh_engine;
    Alcotest.test_case "serve: wire statuses answer typed protocol JSON" `Quick
      test_wire_error_responder;
  ]
