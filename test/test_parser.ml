(* Lexer and parser tests: token streams, full designs in the paper's
   concrete syntax, error reporting, and print/parse round-trips. *)

open Tytra_ir

let design = Alcotest.testable Ast.pp_design Ast.equal_design

let sor_c2_text =
  {|
; **** MANAGE-IR ****
%m_p   = memobj global ui18 size 288
%m_rhs = memobj global ui18 size 288
%m_out = memobj global ui18 size 288
%s_p   = stream istream %m_p pattern cont
%s_rhs = stream istream %m_rhs pattern cont
%s_out = stream ostream %m_out pattern cont
@main.p    = addrspace(1) ui18 !istream !cont !0 !s_p
@main.rhs  = addrspace(1) ui18 !istream !cont !0 !s_rhs
@main.o_p  = addrspace(1) ui18 !ostream !cont !0 !s_out
@sorErrAcc = global ui18 init 0

; **** COMPUTE-IR ****
define void @f0 (ui18 %p, ui18 %rhs, ui18 %w) pipe {
  %pip1 = offset ui18 %p, +1
  %pin1 = offset ui18 %p, -1
  %pkp  = offset ui18 %p, +48
  %pkn  = offset ui18 %p, -48
  %t1 = mul ui18 %w, %pip1
  %t2 = mul ui18 %w, %pin1
  %t3 = add ui18 %t1, %t2
  %t4 = add ui18 %pkp, %pkn
  %t5 = add ui18 %t3, %t4
  %t6 = sub ui18 %t5, %rhs
  %out_p = mov ui18 %t6
  @sorErrAcc = add ui18 %t6, @sorErrAcc
}
define void @main (ui18 %p, ui18 %rhs, ui18 %o_p) seq {
  call @f0 (%p, %rhs, 3) pipe
}
|}

let parse_sor () = Parser.parse ~name:"sor_c2" sor_c2_text

let test_parse_complete () =
  let d = parse_sor () in
  Alcotest.(check int) "3 memobjs" 3 (List.length d.Ast.d_mems);
  Alcotest.(check int) "3 streams" 3 (List.length d.Ast.d_streams);
  Alcotest.(check int) "3 ports" 3 (List.length d.Ast.d_ports);
  Alcotest.(check int) "1 global" 1 (List.length d.Ast.d_globals);
  Alcotest.(check int) "2 functions" 2 (List.length d.Ast.d_funcs);
  let f0 = Ast.find_func_exn d "f0" in
  Alcotest.(check int) "f0 body" 12 (List.length f0.Ast.fn_body);
  Alcotest.(check bool) "f0 is pipe" true (f0.Ast.fn_kind = Ast.Pipe)

let test_parse_validates () =
  Alcotest.(check (list Alcotest.string))
    "validates clean" []
    (List.map Validate.error_to_string (Validate.check (parse_sor ())))

let test_roundtrip_paper_style () =
  let d = parse_sor () in
  let d2 = Parser.parse ~name:"sor_c2" (Pprint.design_to_string d) in
  Alcotest.check design "pprint/parse roundtrip" d d2

let test_quoted_metadata () =
  (* the paper's Fig 12 quotes metadata strings: !"istream", !"CONT" *)
  let src =
    {|
%m = memobj global ui18 size 8
%s = stream istream %m pattern cont
@main.p = addrspace(1) ui18 !"istream" !"CONT" !0 !"s"
define void @main (ui18 %p) seq { }
|}
  in
  let d = Parser.parse src in
  let p = List.hd d.Ast.d_ports in
  Alcotest.(check bool) "dir" true (p.Ast.pt_dir = Ast.IStream);
  Alcotest.(check bool) "pattern" true (p.Ast.pt_pattern = Ast.Cont);
  Alcotest.(check string) "stream" "s" p.Ast.pt_stream

let test_strided_pattern () =
  let src =
    {|
%m = memobj global ui32 size 4096
%s = stream istream %m pattern strided 64
@main.x = addrspace(1) ui32 !istream !strided 64 !0 !s
define void @main (ui32 %x) seq { }
|}
  in
  let d = Parser.parse src in
  Alcotest.(check bool) "stream stride" true
    ((Ast.find_stream_exn d "s").Ast.so_pattern = Ast.Strided 64);
  Alcotest.(check bool) "port stride" true
    ((List.hd d.Ast.d_ports).Ast.pt_pattern = Ast.Strided 64)

let expect_parse_error src =
  match Parser.parse_result src with
  | Error _ -> ()
  | Ok _ -> Alcotest.failf "expected parse error on %S" src

let test_parse_errors () =
  expect_parse_error "define void @f () wat { }";
  expect_parse_error "%m = memobj global ui18";
  expect_parse_error "define void @f (ui18 %x) pipe { %y = bogus ui18 %x }";
  expect_parse_error "define void @f (ui18 %x) pipe { %y = add ui18 %x }";
  expect_parse_error "@main.p = addrspace(9) ui18 !istream !cont !0 !s";
  expect_parse_error "define void @f (ui18 %x) pipe { call @g (%x) }";
  expect_parse_error "%m = memobj global ui18 size -4"

let test_error_line_numbers () =
  match Parser.parse_result "\n\n%m = memobj global ui18\n" with
  | Error e -> (
      match Error.line e with
      | Some line -> Alcotest.(check bool) "line >= 3" true (line >= 3)
      | None -> Alcotest.fail "expected a located lex/parse error")
  | Ok _ -> Alcotest.fail "expected error"

let test_typed_errors () =
  (* parse_result returns the typed channel: constructors, not strings *)
  (match Parser.parse_result ~file:"bad.tirl" "define void @f () wat { }" with
  | Error (Error.Parse { loc; _ }) ->
      Alcotest.(check (option string)) "file recorded" (Some "bad.tirl")
        loc.Error.loc_file
  | Error e -> Alcotest.failf "expected Parse, got %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "expected error");
  (match Parser.parse_result "@x = \x01" with
  | Error (Error.Lex _) -> ()
  | Error e -> Alcotest.failf "expected Lex, got %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "expected error");
  (* to_string renders a located compiler-style diagnostic *)
  (match Parser.parse_result ~file:"bad.tirl" "\ndefine void @f () wat { }" with
  | Error e ->
      let s = Error.to_string e in
      Alcotest.(check bool) "diagnostic is located" true
        (String.length s >= 11 && String.sub s 0 11 = "bad.tirl:2:")
  | Ok _ -> Alcotest.fail "expected error");
  (* missing file surfaces as Io, not Sys_error *)
  (match Parser.load_file "/nonexistent/x.tirl" with
  | Error (Error.Io _) -> ()
  | Error e -> Alcotest.failf "expected Io, got %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "expected error");
  (* a parseable but invalid design surfaces the validator's findings *)
  let tmp = Filename.temp_file "tytra_invalid" ".tirl" in
  let oc = open_out tmp in
  output_string oc "define void @f (ui18 %x) pipe { %y = add ui18 %x, %nope }";
  close_out oc;
  Fun.protect ~finally:(fun () -> Sys.remove tmp) @@ fun () ->
  match Parser.load_file tmp with
  | Error (Error.Invalid (_ :: _)) -> ()
  | Error e -> Alcotest.failf "expected Invalid, got %s" (Error.to_string e)
  | Ok _ -> Alcotest.fail "expected a validation error"

let test_lexer_tokens () =
  let toks = Lexer.tokenize "%a = add ui18 %b, -3 ; comment\n@g(1.5)" in
  let kinds = Array.to_list (Array.map fst toks) in
  Alcotest.(check bool) "token stream" true
    (kinds
    = [ Lexer.TLocal "a"; Lexer.TEq; Lexer.TIdent "add"; Lexer.TIdent "ui18";
        Lexer.TLocal "b"; Lexer.TComma; Lexer.TInt (-3); Lexer.TGlobal "g";
        Lexer.TLparen; Lexer.TFloat 1.5; Lexer.TRparen; Lexer.TEOF ])

let test_lexer_floats () =
  let one s v =
    match Array.to_list (Array.map fst (Lexer.tokenize s)) with
    | [ Lexer.TFloat f; Lexer.TEOF ] ->
        Alcotest.(check (float 1e-12)) s v f
    | other ->
        Alcotest.failf "%S lexed to %s" s
          (String.concat " " (List.map Lexer.token_to_string other))
  in
  one "1.5" 1.5;
  one "2.0e3" 2000.0;
  one "1e-3" 0.001;
  one "-0.25" (-0.25)

(* property: printing any lowered kernel design re-parses equal *)
let arb_small_shape =
  QCheck.make
    QCheck.Gen.(
      map
        (fun (a, b) -> (4 * a, b))
        (pair (int_range 1 4) (int_range 1 4)))

let prop_lowered_roundtrip =
  QCheck.Test.make ~name:"lowered designs roundtrip through .tirl" ~count:30
    arb_small_shape
    (fun (im, km) ->
      let p = Tytra_kernels.Sor.program ~im ~jm:2 ~km () in
      List.for_all
        (fun v ->
          let d = Tytra_front.Lower.lower p v in
          let d2 =
            Parser.parse ~name:d.Ast.d_name (Pprint.design_to_string d)
          in
          Ast.equal_design d d2)
        (List.filter
           (Tytra_front.Transform.applicable p)
           [ Tytra_front.Transform.Pipe; Tytra_front.Transform.Seq;
             Tytra_front.Transform.ParPipe 2;
             Tytra_front.Transform.ParPipe 4 ]))

let suite =
  [
    Alcotest.test_case "parse complete design" `Quick test_parse_complete;
    Alcotest.test_case "parsed design validates" `Quick test_parse_validates;
    Alcotest.test_case "roundtrip paper-style design" `Quick
      test_roundtrip_paper_style;
    Alcotest.test_case "quoted metadata accepted" `Quick test_quoted_metadata;
    Alcotest.test_case "strided pattern" `Quick test_strided_pattern;
    Alcotest.test_case "parse errors rejected" `Quick test_parse_errors;
    Alcotest.test_case "error line numbers" `Quick test_error_line_numbers;
    Alcotest.test_case "lexer token stream" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer float literals" `Quick test_lexer_floats;
    QCheck_alcotest.to_alcotest prop_lowered_roundtrip;
  ]

let test_returning_call_parses () =
  let src =
    {|
define void @f (ui8 %x) pipe {
  %y = add ui8 %x, 1
  %out_y = mov ui8 %y
}
define void @top (ui8 %x) pipe {
  %c1 = call @f (%x) pipe
  call @f (%c1) pipe
}
define void @main (ui8 %x) seq { call @top (%x) pipe }
|}
  in
  let d = Tytra_ir.Validate.check_exn (Parser.parse src) in
  let top = Ast.find_func_exn d "top" in
  match top.Ast.fn_body with
  | [ Ast.Call { rets = [ "c1" ]; _ }; Ast.Call { rets = []; _ } ] -> ()
  | _ -> Alcotest.fail "expected one returning and one plain call"

let test_returning_call_errors () =
  (* more rets than the callee streams *)
  let over =
    {|
define void @f (ui8 %x) pipe {
  %out_y = mov ui8 %x
}
define void @main (ui8 %x) seq {
  %a, %b = call @f (%x) pipe
}
|}
  in
  (match Validate.check (Parser.parse over) with
  | [] -> Alcotest.fail "over-binding must be rejected"
  | _ -> ());
  (* ret name reuse violates SSA *)
  let reuse =
    {|
define void @f (ui8 %x) pipe {
  %out_y = mov ui8 %x
}
define void @main (ui8 %x) seq {
  %a = call @f (%x) pipe
  %a = call @f (%x) pipe
}
|}
  in
  (match Validate.check (Parser.parse reuse) with
  | [] -> Alcotest.fail "SSA reuse must be rejected"
  | _ -> ());
  (* multiple destinations on a non-call *)
  match Parser.parse_result "define void @main (ui8 %x) seq { %a, %b = add ui8 %x, 1 }" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "multi-dst assign must be a parse error"

let suite =
  suite
  @ [
      Alcotest.test_case "returning call parses" `Quick
        test_returning_call_parses;
      Alcotest.test_case "returning call errors" `Quick
        test_returning_call_errors;
      Alcotest.test_case "typed error channel" `Quick test_typed_errors;
    ]
