(* Cost-model tests: polynomial/piecewise fitting (Fig 9), the resource
   expressions, the EKIT throughput expressions (Eqs 1-3), and the wall
   analysis. *)

open Tytra_cost
open Tytra_ir

let feq = Alcotest.(check (float 1e-6))

(* ---- Fit ---- *)

let test_polyfit_exact () =
  (* quadratic through three points is interpolation *)
  let p = Fit.polyfit ~degree:2 [ (1., 2.); (2., 5.); (3., 10.) ] in
  (* y = x^2 + 1 *)
  feq "c0" 1.0 p.(0);
  feq "c1" 0.0 p.(1);
  feq "c2" 1.0 p.(2);
  feq "eval at 4" 17.0 (Fit.eval p 4.0)

let test_polyfit_least_squares () =
  (* overdetermined linear fit of y = 3x + 1 with no noise *)
  let pts = List.init 10 (fun i -> (float_of_int i, (3.0 *. float_of_int i) +. 1.0)) in
  let p = Fit.polyfit ~degree:1 pts in
  feq "intercept" 1.0 p.(0);
  feq "slope" 3.0 p.(1);
  feq "r2 perfect" 1.0 (Fit.r_squared p pts)

let test_polyfit_errors () =
  match Fit.polyfit ~degree:2 [ (1., 1.) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "needs 3 points for degree 2"

let test_piecewise () =
  let pts =
    [ (10., 4.); (18., 4.); (20., 60.); (30., 80.); (36., 92.); (40., 180.);
      (54., 236.) ]
  in
  let pw = Fit.piecewise_fit ~breaks:[ 18.; 36. ] pts in
  feq "segment 1 constant" 4.0 (Fit.piecewise_eval pw 12.0);
  (* segment 2 fits 20+2x through (20,60),(30,80),(36,92) *)
  feq "segment 2 at 24" 68.0 (Fit.piecewise_eval pw 24.0);
  feq "segment 3 at 45" 200.0 (Fit.piecewise_eval pw 45.0)

(* ---- resource model: the paper's Fig 9 numbers ---- *)

let test_div_quadratic_paper_point () =
  (* paper: 24-bit division estimated at 654 ALUTs vs 652 actual *)
  let est = Resource_model.alut_cost Ast.Div (Ty.UInt 24) in
  Alcotest.(check bool) "24-bit div ~654 ALUTs" true (abs (est - 654) <= 1);
  (* and the default quadratic matches x^2+3.7x-10.6 at the fit points *)
  List.iter
    (fun w ->
      let wf = float_of_int w in
      let expect = (wf *. wf) +. (3.7 *. wf) -. 10.6 in
      let got = float_of_int (Resource_model.alut_cost Ast.Div (Ty.UInt w)) in
      Alcotest.(check bool)
        (Printf.sprintf "div at %d bits" w)
        true
        (Float.abs (got -. expect) <= 1.0))
    [ 18; 32; 64 ]

let test_mul_piecewise () =
  let a w = Resource_model.alut_cost Ast.Mul (Ty.UInt w) in
  Alcotest.(check int) "<=18 bits small" 4 (a 12);
  Alcotest.(check int) "<=18 bits small" 4 (a 18);
  Alcotest.(check bool) "discontinuity at 18" true (a 19 > 10 * a 18);
  Alcotest.(check bool) "piecewise growing" true (a 40 > a 36 && a 60 > a 54)

let test_mul_dsp_steps () =
  let d w = Resource_model.dsp_cost Ast.Mul (Ty.UInt w) in
  Alcotest.(check int) "18 -> 1" 1 (d 18);
  Alcotest.(check int) "32 -> 4" 4 (d 32);
  Alcotest.(check int) "54 -> 6" 6 (d 54);
  Alcotest.(check int) "64 -> 8" 8 (d 64);
  Alcotest.(check int) "add uses no DSP" 0 (Resource_model.dsp_cost Ast.Add (Ty.UInt 32))

let test_calibration_regenerates_quadratic () =
  (* fit from tech-map synthesis points (three widths, as in the paper)
     and check the held-out width 24 lands near the synthesis truth *)
  let synth w =
    (Tytra_sim.Techmap.map_unit Ast.Div (Ty.UInt w)).Tytra_device.Resources.aluts
  in
  let poly = Resource_model.calibrate_div synth in
  let est24 = Fit.eval poly 24.0 in
  let act24 = float_of_int (synth 24) in
  Alcotest.(check bool)
    (Printf.sprintf "interpolated %.0f vs actual %.0f" est24 act24)
    true
    (Float.abs (est24 -. act24) /. act24 < 0.02)

let test_estimate_scales_with_lanes () =
  let p = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let usage v =
    (Resource_model.estimate (Tytra_front.Lower.lower p v))
      .Resource_model.est_usage
  in
  let u1 = usage Tytra_front.Transform.Pipe in
  let u4 = usage (Tytra_front.Transform.ParPipe 4) in
  let open Tytra_device.Resources in
  Alcotest.(check bool) "ALUTs grow ~4x" true
    (u4.aluts > 3 * u1.aluts && u4.aluts < 5 * u1.aluts);
  Alcotest.(check bool) "DSPs grow 4x" true (u4.dsps = 4 * u1.dsps)

(* ---- throughput / EKIT ---- *)

let base_inputs =
  {
    Throughput.ngs = 1_000_000;
    bytes_per_tuple = 12.0;
    nki = 1000;
    noff = 256;
    off_bytes = 4.0;
    kpd = 30;
    fd_hz = 200.0e6;
    cpt = 1.0;
    knl = 1;
    dv = 1;
    hpb = 4.0e9;
    rho_h = 0.8;
    gpb = 38.4e9;
    rho_g = 0.7;
    reconfig_s = 0.0;
  }

let test_ekit_form_ordering () =
  let a = Throughput.ekit Throughput.FormA base_inputs in
  let b = Throughput.ekit Throughput.FormB base_inputs in
  let c = Throughput.ekit Throughput.FormC base_inputs in
  Alcotest.(check bool) "B >= A (host amortized)" true
    (b.Throughput.bd_ekit >= a.Throughput.bd_ekit);
  Alcotest.(check bool) "C >= B (no memory wall)" true
    (c.Throughput.bd_ekit >= b.Throughput.bd_ekit)

let test_ekit_form_b_host_scaling () =
  let b1 = Throughput.ekit Throughput.FormB { base_inputs with nki = 1 } in
  let b1000 = Throughput.ekit Throughput.FormB { base_inputs with nki = 1000 } in
  feq "host scaled by nki"
    (b1.Throughput.bd_host_s /. 1000.0)
    b1000.Throughput.bd_host_s

let test_ekit_lane_scaling_when_compute_bound () =
  (* with plenty of bandwidth, EKIT scales with lanes *)
  let i = { base_inputs with rho_g = 1.0; gpb = 1e12; hpb = 1e12 } in
  let e1 = (Throughput.ekit Throughput.FormB i).Throughput.bd_ekit in
  let e4 =
    (Throughput.ekit Throughput.FormB { i with knl = 4 }).Throughput.bd_ekit
  in
  Alcotest.(check bool) "4 lanes ~4x" true (e4 /. e1 > 3.5 && e4 /. e1 <= 4.1)

let test_ekit_memory_wall () =
  (* with tiny DRAM bandwidth, more lanes do not help *)
  let i = { base_inputs with rho_g = 0.01 } in
  let e1 = Throughput.ekit Throughput.FormB i in
  let e8 = Throughput.ekit Throughput.FormB { i with knl = 8 } in
  Alcotest.(check bool) "memory-bound limiter" true
    (e8.Throughput.bd_limiter = Throughput.Gmem_bw);
  Alcotest.(check bool) "no lane speedup at the wall" true
    (e8.Throughput.bd_ekit /. e1.Throughput.bd_ekit < 1.3)

let test_ekit_form_c_always_compute () =
  let i = { base_inputs with rho_g = 0.0001 } in
  let c = Throughput.ekit Throughput.FormC i in
  Alcotest.(check bool) "form C ignores gmem in exec" true
    (c.Throughput.bd_exec_s = c.Throughput.bd_comp_s)

let test_ekit_eq1_structure () =
  (* the total is exactly the sum of the four terms of Eq 1 *)
  let a = Throughput.ekit Throughput.FormA base_inputs in
  feq "eq1 sum"
    (a.Throughput.bd_host_s +. a.Throughput.bd_off_s +. a.Throughput.bd_fill_s
     +. a.Throughput.bd_exec_s)
    a.Throughput.bd_total_s;
  feq "ekit inverse" (1.0 /. a.Throughput.bd_total_s) a.Throughput.bd_ekit;
  feq "exec is max(gmem, comp)"
    (Float.max a.Throughput.bd_gmem_s a.Throughput.bd_comp_s)
    a.Throughput.bd_exec_s

let test_reconfiguration_penalty () =
  (* design-space class C6 (Fig 5): a per-instance reconfiguration penalty
     caps EKIT regardless of lanes *)
  let base = Throughput.ekit Throughput.FormB base_inputs in
  let with_rc =
    Throughput.ekit Throughput.FormB { base_inputs with reconfig_s = 0.01 }
  in
  Alcotest.(check bool) "reconfig slows the variant" true
    (with_rc.Throughput.bd_ekit < base.Throughput.bd_ekit);
  Alcotest.(check bool) "EKIT bounded by 1/reconfig" true
    (with_rc.Throughput.bd_ekit <= 100.0)

let test_cpki_excludes_host () =
  let b = Throughput.ekit Throughput.FormB base_inputs in
  feq "cpki"
    ((b.Throughput.bd_total_s -. b.Throughput.bd_host_s) *. base_inputs.Throughput.fd_hz)
    (Throughput.cpki Throughput.FormB base_inputs)

(* ---- walls / limits ---- *)

let test_walls_ordering () =
  let device = Tytra_device.Device.stratixv_gsd8 in
  let p = Tytra_kernels.Sor.program ~im:32 ~jm:32 ~km:32 () in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  let est = Resource_model.estimate ~device d in
  let inputs = Throughput.inputs_of_design ~device d in
  let w = Limits.walls ~device ~est ~inputs in
  (match (w.Limits.w_host_lanes, w.Limits.w_gmem_lanes) with
  | Some h, Some g ->
      Alcotest.(check bool) "host wall before gmem wall" true (h < g)
  | _ -> Alcotest.fail "both bandwidth walls expected");
  Alcotest.(check bool) "compute wall beyond 1 lane" true
    (w.Limits.w_compute_lanes > 1.0)

let test_balance_hint () =
  let device = Tytra_device.Device.stratixv_gsd8 in
  let p = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  let est = Resource_model.estimate ~device d in
  let h = Limits.balance_hint ~device ~est in
  Alcotest.(check int) "3 other resources" 3 (List.length h.Limits.bh_headroom);
  List.iter
    (fun (_, v) ->
      Alcotest.(check bool) "headroom in [0,1]" true (v >= 0.0 && v <= 1.0))
    h.Limits.bh_headroom

let test_report_evaluate () =
  let p = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  let r = Report.evaluate ~nki:10 d in
  Alcotest.(check bool) "fits" true r.Report.rp_valid;
  Alcotest.(check bool) "report prints" true
    (String.length (Report.to_string r) > 100)

(* ---- staged memoization ---- *)

let test_stage_caches_hit_on_repeat () =
  let p = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  Report.clear_stage_caches ();
  let r1 = Report.evaluate ~nki:10 d in
  let r2 = Report.evaluate ~nki:10 d in
  Alcotest.(check bool) "identical reports" true (r1 = r2);
  List.iter
    (fun (name, s) ->
      Alcotest.(check bool) (name ^ " hits on repeat") true
        (s.Tytra_exec.Cache.st_hits > 0))
    (Report.stage_cache_stats ())

(* A lane sweep re-costs one shared PE, so the per-function resource
   stage must miss once and hit for every further PE instance. *)
let test_resource_stage_shares_pe_across_lanes () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  Report.clear_stage_caches ();
  List.iter
    (fun v ->
      ignore (Report.evaluate ~nki:10 (Tytra_front.Lower.lower p v)))
    [ Tytra_front.Transform.Pipe; Tytra_front.Transform.ParPipe 4;
      Tytra_front.Transform.ParPipe 8 ];
  let s = List.assoc "cost.stage_cache.resource" (Report.stage_cache_stats ()) in
  (* 1 + 4 + 8 PE instances share one function body: 1 miss, 12 hits *)
  Alcotest.(check int) "one structural miss" 1 s.Tytra_exec.Cache.st_misses;
  Alcotest.(check int) "replicas served from cache" 12
    s.Tytra_exec.Cache.st_hits

(* The inputs stage is keyed without the form, so re-evaluating under
   another memory-execution form reuses the Table-I extraction; the
   throughput stage must still distinguish the forms. *)
let test_inputs_stage_shared_across_forms () =
  let p = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  Report.clear_stage_caches ();
  let ra = Report.evaluate ~form:Throughput.FormA ~nki:10 d in
  let rb = Report.evaluate ~form:Throughput.FormB ~nki:10 d in
  let stats = Report.stage_cache_stats () in
  let inputs = List.assoc "cost.stage_cache.inputs" stats in
  Alcotest.(check int) "one inputs extraction" 1
    inputs.Tytra_exec.Cache.st_misses;
  Alcotest.(check int) "second form hits inputs" 1
    inputs.Tytra_exec.Cache.st_hits;
  let tp = List.assoc "cost.stage_cache.throughput" stats in
  Alcotest.(check int) "forms evaluated separately" 2
    tp.Tytra_exec.Cache.st_misses;
  Alcotest.(check bool) "forms differ" true
    (ra.Report.rp_breakdown.Throughput.bd_ekit
    <> rb.Report.rp_breakdown.Throughput.bd_ekit)

(* Different calibrations must not share resource-stage entries. *)
let test_stage_cache_calibration_sensitivity () =
  let p = Tytra_kernels.Sor.program ~im:8 ~jm:6 ~km:6 () in
  let d = Tytra_front.Lower.lower p Tytra_front.Transform.Pipe in
  let f = Ast.find_func_exn d "f0" in
  Report.clear_stage_caches ();
  let u1 = Resource_model.pe_usage d f in
  let other =
    { Resource_model.default_calibration with
      Resource_model.div_aluts = [| 0.0; 0.0; 2.0 |] }
  in
  let u2 = Resource_model.pe_usage ~cal:other d f in
  ignore u2;
  let s = Resource_model.pe_cache_stats () in
  Alcotest.(check int) "distinct calibration keys" 2
    s.Tytra_exec.Cache.st_misses;
  (* and the same calibration still hits *)
  let u1' = Resource_model.pe_usage d f in
  Alcotest.(check bool) "hit returns identical usage" true (u1 = u1')

let suite =
  [
    Alcotest.test_case "polyfit interpolation" `Quick test_polyfit_exact;
    Alcotest.test_case "polyfit least squares" `Quick test_polyfit_least_squares;
    Alcotest.test_case "polyfit errors" `Quick test_polyfit_errors;
    Alcotest.test_case "piecewise fit" `Quick test_piecewise;
    Alcotest.test_case "div quadratic (Fig 9)" `Quick
      test_div_quadratic_paper_point;
    Alcotest.test_case "mul piecewise (Fig 9)" `Quick test_mul_piecewise;
    Alcotest.test_case "mul DSP steps (Fig 9)" `Quick test_mul_dsp_steps;
    Alcotest.test_case "calibration regenerates quadratic" `Quick
      test_calibration_regenerates_quadratic;
    Alcotest.test_case "estimate scales with lanes" `Quick
      test_estimate_scales_with_lanes;
    Alcotest.test_case "EKIT form ordering" `Quick test_ekit_form_ordering;
    Alcotest.test_case "EKIT form B host scaling" `Quick
      test_ekit_form_b_host_scaling;
    Alcotest.test_case "EKIT lane scaling" `Quick
      test_ekit_lane_scaling_when_compute_bound;
    Alcotest.test_case "EKIT memory wall" `Quick test_ekit_memory_wall;
    Alcotest.test_case "EKIT form C compute-bound" `Quick
      test_ekit_form_c_always_compute;
    Alcotest.test_case "EKIT Eq 1 structure" `Quick test_ekit_eq1_structure;
    Alcotest.test_case "CPKI excludes host" `Quick test_cpki_excludes_host;
    Alcotest.test_case "reconfiguration penalty (C6)" `Quick
      test_reconfiguration_penalty;
    Alcotest.test_case "walls ordering" `Quick test_walls_ordering;
    Alcotest.test_case "balance hint" `Quick test_balance_hint;
    Alcotest.test_case "full report" `Quick test_report_evaluate;
    Alcotest.test_case "stage caches hit on repeat" `Quick
      test_stage_caches_hit_on_repeat;
    Alcotest.test_case "resource stage shared across lanes" `Quick
      test_resource_stage_shares_pe_across_lanes;
    Alcotest.test_case "inputs stage shared across forms" `Quick
      test_inputs_stage_shared_across_forms;
    Alcotest.test_case "stage cache calibration-sensitive" `Quick
      test_stage_cache_calibration_sensitivity;
  ]
