(* Telemetry tests: span nesting/ordering and metric aggregation under a
   deterministic injected clock, JSON export validity, and an end-to-end
   check that `tybec cost --trace` emits a Chrome trace containing the
   documented phase names (DESIGN.md §7 — the taxonomy is a public
   interface, so renaming a phase must fail here). *)

module Tel = Tytra_telemetry

(* Every test runs against fresh global telemetry state and leaves
   telemetry disabled for the rest of the suite. *)
let with_fresh_telemetry f =
  Tel.Export.reset_all ();
  Tel.Clock.set_source (Tel.Clock.counting ~start:0L ~step:1000L ());
  Tel.Control.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Tel.Control.set_enabled false;
      Tel.Clock.use_monotonic ();
      Tel.Export.reset_all ())
    f

(* ------------------------------------------------------------------ *)
(* Minimal JSON parser — enough to *validate* exporter output and walk
   it. No external JSON package is available in this environment.       *)
(* ------------------------------------------------------------------ *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of json list
  | Obj of (string * json) list

exception Bad_json of string

let parse_json (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Bad_json (Printf.sprintf "at %d: %s" !pos msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') -> advance (); skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %c" c)
  in
  let literal word v =
    if !pos + String.length word <= n
       && String.sub s !pos (String.length word) = word
    then (pos := !pos + String.length word; v)
    else fail ("expected " ^ word)
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> fail "unterminated string"
      | Some '"' -> advance (); Buffer.contents b
      | Some '\\' -> (
          advance ();
          match peek () with
          | Some '"' -> advance (); Buffer.add_char b '"'; go ()
          | Some '\\' -> advance (); Buffer.add_char b '\\'; go ()
          | Some '/' -> advance (); Buffer.add_char b '/'; go ()
          | Some 'n' -> advance (); Buffer.add_char b '\n'; go ()
          | Some 't' -> advance (); Buffer.add_char b '\t'; go ()
          | Some 'r' -> advance (); Buffer.add_char b '\r'; go ()
          | Some 'b' -> advance (); Buffer.add_char b '\b'; go ()
          | Some 'f' -> advance (); Buffer.add_char b '\012'; go ()
          | Some 'u' ->
              advance ();
              if !pos + 4 > n then fail "bad \\u escape";
              let hex = String.sub s !pos 4 in
              pos := !pos + 4;
              (match int_of_string_opt ("0x" ^ hex) with
              | Some code when code < 0x80 ->
                  Buffer.add_char b (Char.chr code)
              | Some _ -> Buffer.add_char b '?'
              | None -> fail "bad \\u escape");
              go ()
          | _ -> fail "bad escape")
      | Some c when Char.code c < 0x20 -> fail "raw control char in string"
      | Some c -> advance (); Buffer.add_char b c; go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> num_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then (advance (); Obj [])
        else
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected , or } in object"
          in
          members []
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then (advance (); List [])
        else
          let rec items acc =
            let v = parse_value () in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected , or ] in array"
          in
          items []
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
    | None -> fail "unexpected end of input"
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then fail "trailing garbage";
  v

let member key = function
  | Obj kvs -> List.assoc_opt key kvs
  | _ -> None

let str_member key j =
  match member key j with Some (Str s) -> Some s | _ -> None

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting_and_ordering () =
  with_fresh_telemetry @@ fun () ->
  let r =
    Tel.Span.with_ ~name:"outer" (fun () ->
        Tel.Span.with_ ~name:"inner.a" (fun () -> ()) ;
        Tel.Span.with_ ~name:"inner.b" (fun () -> 42))
  in
  Alcotest.(check int) "body value returned" 42 r;
  let evs = Tel.Span.events () in
  Alcotest.(check (list string)) "completion order: children first"
    [ "inner.a"; "inner.b"; "outer" ]
    (List.map (fun e -> e.Tel.Span.ev_name) evs);
  Alcotest.(check (list int)) "depths"
    [ 1; 1; 0 ]
    (List.map (fun e -> e.Tel.Span.ev_depth) evs);
  Alcotest.(check (list int)) "sequence numbers are the completion order"
    [ 0; 1; 2 ]
    (List.map (fun e -> e.Tel.Span.ev_seq) evs);
  (* counting clock: each reading advances by 1000 ns, so every span
     measures exactly (readings in between + 1) * 1000 ns *)
  let by_name n = List.find (fun e -> e.Tel.Span.ev_name = n) evs in
  Alcotest.(check int64) "inner.a duration" 1000L (by_name "inner.a").Tel.Span.ev_dur_ns;
  Alcotest.(check int64) "inner.b duration" 1000L (by_name "inner.b").Tel.Span.ev_dur_ns;
  Alcotest.(check int64) "outer duration spans the children" 5000L
    (by_name "outer").Tel.Span.ev_dur_ns;
  let outer = by_name "outer" and a = by_name "inner.a" in
  Alcotest.(check bool) "child starts inside parent" true
    (a.Tel.Span.ev_ts_ns > outer.Tel.Span.ev_ts_ns
    && Int64.add a.Tel.Span.ev_ts_ns a.Tel.Span.ev_dur_ns
       < Int64.add outer.Tel.Span.ev_ts_ns outer.Tel.Span.ev_dur_ns)

let test_span_exception_safety () =
  with_fresh_telemetry @@ fun () ->
  (try
     Tel.Span.with_ ~name:"boom" (fun () -> failwith "expected") |> ignore;
     Alcotest.fail "exception swallowed"
   with Failure m -> Alcotest.(check string) "re-raised" "expected" m);
  (match Tel.Span.events () with
  | [ e ] ->
      Alcotest.(check string) "recorded" "boom" e.Tel.Span.ev_name;
      Alcotest.(check bool) "tagged with error attr" true
        (List.mem_assoc "error" e.Tel.Span.ev_attrs)
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs));
  Alcotest.(check (list string)) "stack unwound" [] (Tel.Span.current_path ())

let test_span_disabled_is_passthrough () =
  Tel.Export.reset_all ();
  Tel.Control.set_enabled false;
  let r = Tel.Span.with_ ~name:"ghost" (fun () -> 7) in
  Tel.Metrics.incr "ghost.counter";
  Tel.Metrics.observe "ghost.hist" 1.0;
  Alcotest.(check int) "value passes through" 7 r;
  Alcotest.(check int) "no events" 0 (List.length (Tel.Span.events ()));
  Alcotest.(check (list string)) "no metrics" [] (Tel.Metrics.names ())

let test_span_retention_cap () =
  with_fresh_telemetry @@ fun () ->
  Tel.Span.set_max_events 3;
  Fun.protect
    ~finally:(fun () -> Tel.Span.set_max_events 1_000_000)
    (fun () ->
      for i = 1 to 5 do
        Tel.Span.with_ ~name:(Printf.sprintf "s%d" i) (fun () -> ())
      done;
      Alcotest.(check int) "kept up to cap" 3 (List.length (Tel.Span.events ()));
      Alcotest.(check int) "rest counted as dropped" 2 (Tel.Span.dropped_events ()))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_counter_aggregation () =
  with_fresh_telemetry @@ fun () ->
  Tel.Metrics.incr "points";
  Tel.Metrics.incr "points";
  Tel.Metrics.incr ~by:3 "points";
  Tel.Metrics.add "bytes" 0.5;
  Tel.Metrics.add "bytes" 1.75;
  Tel.Metrics.set "front" 4.0;
  Tel.Metrics.set "front" 9.0;
  Alcotest.(check (option (float 1e-9))) "counter sums" (Some 5.0)
    (Tel.Metrics.counter_value "points");
  Alcotest.(check (option (float 1e-9))) "float counter sums" (Some 2.25)
    (Tel.Metrics.counter_value "bytes");
  Alcotest.(check (option (float 1e-9))) "gauge keeps last" (Some 9.0)
    (Tel.Metrics.gauge_value "front");
  Alcotest.(check (option (float 1e-9))) "missing metric" None
    (Tel.Metrics.counter_value "nope");
  Alcotest.(check (list string)) "names sorted"
    [ "bytes"; "front"; "points" ]
    (Tel.Metrics.names ())

let test_histogram_stats () =
  with_fresh_telemetry @@ fun () ->
  List.iter (Tel.Metrics.observe "lat")
    [ 5.0; 1.0; 3.0; 2.0; 4.0; 6.0; 7.0; 8.0; 9.0; 10.0 ];
  match Tel.Metrics.histogram_stats "lat" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check int) "count" 10 s.Tel.Metrics.hs_count;
      Alcotest.(check (float 1e-9)) "sum" 55.0 s.Tel.Metrics.hs_sum;
      Alcotest.(check (float 1e-9)) "mean" 5.5 s.Tel.Metrics.hs_mean;
      Alcotest.(check (float 1e-9)) "min" 1.0 s.Tel.Metrics.hs_min;
      Alcotest.(check (float 1e-9)) "max" 10.0 s.Tel.Metrics.hs_max;
      Alcotest.(check (float 1e-9)) "p50 of 1..10" 5.0 s.Tel.Metrics.hs_p50;
      Alcotest.(check (float 1e-9)) "p95 of 1..10" 10.0 s.Tel.Metrics.hs_p95

let test_metrics_json_valid () =
  with_fresh_telemetry @@ fun () ->
  Tel.Metrics.incr "a \"quoted\"\nname";
  Tel.Metrics.observe "h" 1.5;
  let j = parse_json (Tel.Metrics.to_json ()) in
  (match member "counters" j with
  | Some (Obj [ (name, Num 1.0) ]) ->
      Alcotest.(check string) "escaped name round-trips" "a \"quoted\"\nname"
        name
  | _ -> Alcotest.fail "counters object malformed");
  match member "histograms" j with
  | Some (Obj [ ("h", h) ]) ->
      Alcotest.(check bool) "histogram has stats" true
        (member "p95" h <> None && member "count" h <> None)
  | _ -> Alcotest.fail "histograms object malformed"

(* ------------------------------------------------------------------ *)
(* Export                                                              *)
(* ------------------------------------------------------------------ *)

let test_chrome_trace_export () =
  with_fresh_telemetry @@ fun () ->
  Tel.Span.with_ ~name:"cost.evaluate"
    ~attrs:[ ("design", Tel.Span.Str "sor"); ("lanes", Tel.Span.Int 4) ]
    (fun () -> Tel.Span.with_ ~name:"cost.throughput" (fun () -> ()));
  let j = parse_json (Tel.Export.to_chrome_json ~process_name:"test" ()) in
  let evs =
    match member "traceEvents" j with
    | Some (List l) -> l
    | _ -> Alcotest.fail "traceEvents missing"
  in
  let complete =
    List.filter (fun e -> str_member "ph" e = Some "X") evs
  in
  Alcotest.(check (list (option string))) "span names"
    [ Some "cost.throughput"; Some "cost.evaluate" ]
    (List.map (str_member "name") complete);
  let ev_cost = List.nth complete 1 in
  Alcotest.(check (option string)) "category is the dotted prefix"
    (Some "cost") (str_member "cat" ev_cost);
  (match member "args" ev_cost with
  | Some args ->
      Alcotest.(check (option string)) "string attr" (Some "sor")
        (str_member "design" args);
      Alcotest.(check bool) "int attr" true
        (member "lanes" args = Some (Num 4.0))
  | None -> Alcotest.fail "args missing");
  Alcotest.(check bool) "has process_name metadata event" true
    (List.exists
       (fun e ->
         str_member "ph" e = Some "M"
         && str_member "name" e = Some "process_name")
       evs)

let test_summary_aggregates () =
  with_fresh_telemetry @@ fun () ->
  for _ = 1 to 3 do
    Tel.Span.with_ ~name:"phase.x" (fun () -> ())
  done;
  Tel.Span.with_ ~name:"phase.y" (fun () ->
      Tel.Span.with_ ~name:"phase.x" (fun () -> ()));
  match Tel.Export.summary () with
  | [ heavy; light ] ->
      (* four 1-tick phase.x spans (4000 ns total) outweigh the single
         3-tick phase.y span: heaviest-total-first ordering *)
      Alcotest.(check string) "x first (heavier)" "phase.x"
        heavy.Tel.Export.sr_name;
      Alcotest.(check int) "x count" 4 heavy.Tel.Export.sr_count;
      Alcotest.(check int64) "x total" 4000L heavy.Tel.Export.sr_total_ns;
      Alcotest.(check (float 1e-9)) "x mean" 1000.0 heavy.Tel.Export.sr_mean_ns;
      Alcotest.(check string) "y second" "phase.y" light.Tel.Export.sr_name;
      Alcotest.(check int64) "y total" 3000L light.Tel.Export.sr_total_ns
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

(* ------------------------------------------------------------------ *)
(* End-to-end: tybec cost --trace emits the documented phases          *)
(* ------------------------------------------------------------------ *)

let find_existing candidates = List.find_opt Sys.file_exists candidates

let test_tybec_cost_trace () =
  let tybec =
    find_existing [ "../bin/tybec.exe"; "_build/default/bin/tybec.exe" ]
  in
  let example =
    find_existing
      [ "../../../examples/ir/sor_c2.tirl"; "examples/ir/sor_c2.tirl" ]
  in
  match (tybec, example) with
  | Some tybec, Some example ->
      let trace = Filename.temp_file "tytra_trace" ".json" in
      Fun.protect ~finally:(fun () -> try Sys.remove trace with _ -> ())
      @@ fun () ->
      let cmd =
        Printf.sprintf "%s cost %s --trace %s > /dev/null"
          (Filename.quote tybec) (Filename.quote example)
          (Filename.quote trace)
      in
      Alcotest.(check int) "tybec cost exits 0" 0 (Sys.command cmd);
      let ic = open_in_bin trace in
      let len = in_channel_length ic in
      let contents = really_input_string ic len in
      close_in ic;
      let j = parse_json contents in
      let names =
        match member "traceEvents" j with
        | Some (List evs) ->
            List.filter_map
              (fun e ->
                if str_member "ph" e = Some "X" then str_member "name" e
                else None)
              evs
        | _ -> Alcotest.fail "traceEvents missing"
      in
      List.iter
        (fun phase ->
          Alcotest.(check bool)
            (Printf.sprintf "trace contains %s" phase)
            true (List.mem phase names))
        [ "ir.parse"; "ir.validate"; "ir.analysis"; "cost.resource_model";
          "cost.evaluate"; "cost.throughput"; "cost.limits"; "tybec.report";
          "tybec.cost" ]
  | _ -> Alcotest.skip ()

let suite =
  [
    Alcotest.test_case "span nesting and completion order" `Quick
      test_span_nesting_and_ordering;
    Alcotest.test_case "span records and re-raises on exception" `Quick
      test_span_exception_safety;
    Alcotest.test_case "disabled telemetry is a pass-through" `Quick
      test_span_disabled_is_passthrough;
    Alcotest.test_case "event retention cap counts drops" `Quick
      test_span_retention_cap;
    Alcotest.test_case "counter and gauge aggregation" `Quick
      test_counter_aggregation;
    Alcotest.test_case "histogram percentiles" `Quick test_histogram_stats;
    Alcotest.test_case "metrics JSON is valid and escaped" `Quick
      test_metrics_json_valid;
    Alcotest.test_case "Chrome-trace export structure" `Quick
      test_chrome_trace_export;
    Alcotest.test_case "per-phase summary aggregates" `Quick
      test_summary_aggregates;
    Alcotest.test_case "tybec cost --trace end to end" `Slow
      test_tybec_cost_trace;
  ]
