(* DSE tests: exploration coverage, selection, Pareto front, guided
   search, parallel/sequential equivalence, the evaluation cache, and
   the bound-based pruner (admissibility + exactness vs the exhaustive
   sweep). *)

open Tytra_dse
open Tytra_front

let prog () = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 ()

let cfg = Dse.default_config
let explore_l ?(config = cfg) ~max_lanes ?(nki = 1) p =
  Dse.explore ~config:{ config with max_lanes; nki; prune = false } p

let test_explore_covers_variants () =
  let pts = explore_l ~max_lanes:8 (prog ()) in
  let names =
    List.map (fun p -> Transform.to_string p.Dse.dp_variant) pts
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) (v ^ " explored") true (List.mem v names))
    [ "seq"; "pipe"; "par2-pipe"; "par4-pipe"; "par8-pipe" ]

let test_best_is_valid_max () =
  let pts = explore_l ~max_lanes:8 ~nki:100 (prog ()) in
  match Dse.best pts with
  | None -> Alcotest.fail "expected a valid point"
  | Some b ->
      Alcotest.(check bool) "valid" true (Dse.valid b);
      List.iter
        (fun p ->
          if Dse.valid p then
            Alcotest.(check bool) "no better valid point" true
              (Dse.ekit p <= Dse.ekit b +. 1e-9))
        pts

let test_pipe_beats_seq () =
  let pts = explore_l ~max_lanes:4 (prog ()) in
  let find v = List.find (fun p -> p.Dse.dp_variant = v) pts in
  Alcotest.(check bool) "pipeline >> sequential" true
    (Dse.ekit (find Transform.Pipe) > 3.0 *. Dse.ekit (find Transform.Seq))

let test_pareto_front_property () =
  let pts = explore_l ~max_lanes:16 ~nki:100 (prog ()) in
  let front = Dse.pareto pts in
  Alcotest.(check bool) "front non-empty" true (front <> []);
  (* no point of the front is dominated by any valid point *)
  List.iter
    (fun f ->
      List.iter
        (fun q ->
          if Dse.valid q && q != f then
            Alcotest.(check bool) "not dominated" false
              (Dse.ekit q > Dse.ekit f && Dse.area q < Dse.area f))
        pts)
    front

let test_guided_trace () =
  let trace =
    Dse.guided ~config:{ cfg with nki = 100; max_lanes = 16 } (prog ())
  in
  Alcotest.(check bool) "trace starts at pipe" true
    ((List.hd trace).Dse.dp_variant = Transform.Pipe);
  (* lanes double along the trace *)
  let lanes =
    List.map (fun p -> Transform.lanes p.Dse.dp_variant) trace
  in
  let rec doubling = function
    | a :: (b :: _ as tl) -> b = 2 * a && doubling tl
    | _ -> true
  in
  Alcotest.(check bool) "doubling lanes" true (doubling lanes);
  (* the trace stops for a reason: wall hit, lanes exhausted, or oversize *)
  let last = List.nth trace (List.length trace - 1) in
  let stopped_reasonably =
    Transform.lanes last.Dse.dp_variant >= 16
    || last.Dse.dp_report.Tytra_cost.Report.rp_breakdown
         .Tytra_cost.Throughput.bd_limiter
       <> Tytra_cost.Throughput.Compute
    || not (Dse.valid last)
  in
  Alcotest.(check bool) "stop condition" true stopped_reasonably

let test_explore_respects_divisibility () =
  (* 10 points: lanes 3 not applicable, enumerate must skip it *)
  let p =
    { Tytra_front.Expr.p_kernel = (Tytra_kernels.Sor.program ~im:10 ~jm:1 ~km:1 ()).Tytra_front.Expr.p_kernel;
      p_shape = [ 10 ] }
  in
  let pts = explore_l ~max_lanes:8 p in
  List.iter
    (fun pt ->
      Alcotest.(check bool) "applicable" true
        (Transform.applicable p pt.Dse.dp_variant))
    pts

(* ---- parallel evaluation and the memoization cache ---- *)

(* CI exercises both pool widths: TYTRA_JOBS=1 and TYTRA_JOBS=4. *)
let test_jobs =
  match int_of_string_opt (try Sys.getenv "TYTRA_JOBS" with Not_found -> "") with
  | Some j when j >= 1 -> j
  | _ -> 4

let same_points (a : Dse.point list) (b : Dse.point list) =
  List.length a = List.length b
  && List.for_all2
       (fun p q ->
         p.Dse.dp_variant = q.Dse.dp_variant
         && p.Dse.dp_report = q.Dse.dp_report)
       a b

let test_parallel_equals_sequential () =
  let p = prog () in
  (* fresh cache so hits cannot mask an ordering bug in the pool; prune
     off because the raw survivor set is jobs-sensitive by design *)
  Dse.clear_cache ();
  let seq =
    Dse.explore
      ~config:{ cfg with nki = 100; jobs = 1; use_cache = false; prune = false }
      p
  in
  List.iter
    (fun jobs ->
      Dse.clear_cache ();
      let par =
        Dse.explore
          ~config:{ cfg with nki = 100; jobs; use_cache = false; prune = false }
          p
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d == sequential" jobs)
        true (same_points seq par))
    [ 1; test_jobs ]

let test_cached_sweep_equals_uncached () =
  let p = prog () in
  Dse.clear_cache ();
  let cold = Dse.explore ~config:{ cfg with nki = 100 } p in
  let warm = Dse.explore ~config:{ cfg with nki = 100 } p in
  Alcotest.(check bool) "warm == cold" true (same_points cold warm)

let test_repeat_sweep_hits_cache () =
  let p = prog () in
  Dse.clear_cache ();
  Tytra_telemetry.Control.with_enabled true @@ fun () ->
  Tytra_telemetry.Metrics.reset ();
  let config = { cfg with nki = 100; jobs = test_jobs } in
  let pts = Dse.explore ~config p in
  let s1 = Dse.cache_stats () in
  let _ = Dse.explore ~config p in
  let s2 = Dse.cache_stats () in
  let new_hits = s2.Tytra_exec.Cache.st_hits - s1.Tytra_exec.Cache.st_hits in
  let n = List.length pts in
  Alcotest.(check bool) "second sweep >90% cached" true
    (float_of_int new_hits > 0.9 *. float_of_int n);
  (* and the counters are published through the telemetry registry *)
  match Tytra_telemetry.Metrics.counter_value "dse.cache.hits" with
  | Some h -> Alcotest.(check bool) "telemetry hits counter" true (h > 0.0)
  | None -> Alcotest.fail "dse.cache.hits not registered"

let test_cache_key_sensitivity () =
  (* a different form / nki / device must not serve a stale report *)
  let p = prog () in
  Dse.clear_cache ();
  let ek config = List.map Dse.ekit (Dse.explore ~config p) in
  let base = ek { cfg with nki = 100 } in
  let other_nki = ek { cfg with nki = 1 } in
  let other_form = ek { cfg with nki = 100; form = Tytra_cost.Throughput.FormA } in
  Alcotest.(check bool) "nki changes the evaluation" true (base <> other_nki);
  Alcotest.(check bool) "form changes the evaluation" true (base <> other_form);
  (* identical parameters do hit *)
  let s1 = Dse.cache_stats () in
  let again = ek { cfg with nki = 100 } in
  let s2 = Dse.cache_stats () in
  Alcotest.(check bool) "same-config sweep cached" true
    (s2.Tytra_exec.Cache.st_hits > s1.Tytra_exec.Cache.st_hits);
  Alcotest.(check bool) "cached results identical" true (base = again)

(* ---- bound-based pruning ---- *)

(* The four Rodinia-style kernels at small sizes; lavamd's box count
   gives the richest divisor set. *)
let kernels =
  [
    ("sor", fun () -> Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 ());
    ("hotspot", fun () -> Tytra_kernels.Hotspot.program ~rows:32 ~cols:32 ());
    ("lavamd", fun () -> Tytra_kernels.Lavamd.program ~boxes:16 ());
    ("srad", fun () -> Tytra_kernels.Srad.program ~rows:32 ~cols:32 ());
  ]

let same_opt_point a b =
  match (a, b) with
  | None, None -> true
  | Some p, Some q ->
      p.Dse.dp_variant = q.Dse.dp_variant && p.Dse.dp_report = q.Dse.dp_report
  | _ -> false

(* Pruned and exhaustive sweeps must agree on best and pareto — the
   pruning-exactness contract — across every kernel × form × device,
   and must do strictly less full evaluation whenever the space holds a
   resource wall (an invalid point proves the wall exists). *)
let test_pruning_equivalence () =
  List.iter
    (fun (name, mk) ->
      let p = mk () in
      List.iter
        (fun form ->
          List.iter
            (fun device ->
              let config =
                { cfg with device; form; nki = 100; max_lanes = 16 }
              in
              let exhaustive =
                Dse.explore_sweep ~config:{ config with prune = false } p
              in
              let pruned = Dse.explore_sweep ~config p in
              let label what =
                Printf.sprintf "%s/form %s/%s: %s" name
                  (Tytra_cost.Throughput.form_to_string form)
                  device.Tytra_device.Device.dev_name what
              in
              Alcotest.(check bool)
                (label "best agrees") true
                (same_opt_point
                   (Dse.best exhaustive.Dse.sw_points)
                   (Dse.best pruned.Dse.sw_points));
              let front_sig pts =
                List.map
                  (fun q -> (q.Dse.dp_variant, q.Dse.dp_report))
                  (Dse.pareto pts)
              in
              Alcotest.(check bool)
                (label "pareto agrees") true
                (front_sig exhaustive.Dse.sw_points
                = front_sig pruned.Dse.sw_points);
              (* accounting adds up *)
              let s = pruned.Dse.sw_stats in
              Alcotest.(check int) (label "accounting")
                s.Dse.ss_space
                (s.Dse.ss_evaluated + s.Dse.ss_pruned_resource
               + s.Dse.ss_pruned_incumbent);
              (* a resource wall guarantees at least the overflow prunes *)
              let has_invalid =
                List.exists
                  (fun q -> not (Dse.valid q))
                  exhaustive.Dse.sw_points
              in
              if has_invalid then
                Alcotest.(check bool)
                  (label "strictly fewer evaluations") true
                  (s.Dse.ss_evaluated < s.Dse.ss_space))
            Tytra_device.Device.all)
        [ Tytra_cost.Throughput.FormA; Tytra_cost.Throughput.FormB;
          Tytra_cost.Throughput.FormC ])
    kernels

(* best/pareto of a pruned sweep must not depend on the pool width,
   even though the survivor set may. *)
let test_pruned_selection_jobs_invariant () =
  let p = prog () in
  let sweep jobs =
    Dse.clear_cache ();
    Dse.explore_sweep
      ~config:{ cfg with nki = 100; max_lanes = 16; jobs; use_cache = false }
      p
  in
  let s1 = sweep 1 and sj = sweep test_jobs in
  Alcotest.(check bool) "best invariant" true
    (same_opt_point (Dse.best s1.Dse.sw_points) (Dse.best sj.Dse.sw_points));
  Alcotest.(check bool) "pareto invariant" true
    (List.map
       (fun q -> (q.Dse.dp_variant, q.Dse.dp_report))
       (Dse.pareto s1.Dse.sw_points)
    = List.map
        (fun q -> (q.Dse.dp_variant, q.Dse.dp_report))
        (Dse.pareto sj.Dse.sw_points))

(* Bounds admissibility on real evaluations: the resource lower bound
   never exceeds the variant's actual usage (componentwise), the clock
   upper bound its actual clock, nor the EKIT upper bound its actual
   EKIT. *)
let test_bounds_admissible () =
  List.iter
    (fun (name, mk) ->
      let p = mk () in
      let config = { cfg with nki = 100; max_lanes = 8 } in
      let pts = Dse.explore ~config:{ config with prune = false } p in
      let baseline =
        List.find (fun q -> q.Dse.dp_variant = Transform.Pipe) pts
      in
      List.iter
        (fun q ->
          let pes = Transform.pes q.Dse.dp_variant in
          if pes >= 2 then begin
            let b =
              Tytra_cost.Bounds.of_baseline ~device:config.Dse.device
                ~form:config.Dse.form ~pes baseline.Dse.dp_report
            in
            let est =
              q.Dse.dp_report.Tytra_cost.Report.rp_estimate
            in
            let u = est.Tytra_cost.Resource_model.est_usage in
            let lb = b.Tytra_cost.Bounds.b_usage_lb in
            let open Tytra_device.Resources in
            let label what =
              Printf.sprintf "%s %s pes=%d" name what pes
            in
            Alcotest.(check bool) (label "usage lb") true
              (lb.aluts <= u.aluts && lb.regs <= u.regs
              && lb.bram_bits <= u.bram_bits
              && lb.bram_blocks <= u.bram_blocks && lb.dsps <= u.dsps);
            Alcotest.(check bool) (label "fmax ub") true
              (b.Tytra_cost.Bounds.b_fmax_ub_mhz
               >= est.Tytra_cost.Resource_model.est_fmax_mhz -. 1e-9);
            Alcotest.(check bool) (label "ekit ub") true
              (b.Tytra_cost.Bounds.b_ekit_ub >= Dse.ekit q -. 1e-9);
            Alcotest.(check bool) (label "fits bound") true
              ((not (Dse.valid q)) || b.Tytra_cost.Bounds.b_fits)
          end)
        pts)
    kernels

(* ---- O(n log n) pareto vs the reference-by-definition filter ---- *)

let reference_pareto (points : Dse.point list) =
  let valid_pts = List.filter Dse.valid points in
  List.filter
    (fun p ->
      not
        (List.exists
           (fun q ->
             q != p
             && Dse.ekit q >= Dse.ekit p
             && Dse.area q <= Dse.area p
             && (Dse.ekit q > Dse.ekit p || Dse.area q < Dse.area p))
           valid_pts))
    valid_pts

let test_pareto_matches_reference () =
  (* synthesize a randomized point cloud by perturbing one real report;
     deliberately include duplicates, area ties and invalid points *)
  let template =
    List.hd (explore_l ~max_lanes:2 ~nki:100 (prog ()))
  in
  let mk ~ekit ~aluts ~valid =
    let r = template.Dse.dp_report in
    let est = r.Tytra_cost.Report.rp_estimate in
    {
      template with
      Dse.dp_report =
        {
          r with
          Tytra_cost.Report.rp_valid = valid;
          rp_breakdown =
            { r.Tytra_cost.Report.rp_breakdown with
              Tytra_cost.Throughput.bd_ekit = ekit };
          rp_estimate =
            {
              est with
              Tytra_cost.Resource_model.est_usage =
                { est.Tytra_cost.Resource_model.est_usage with
                  Tytra_device.Resources.aluts = aluts };
            };
        };
    }
  in
  let seed = ref 0x2545F49 in
  let rand m =
    (* xorshift-ish deterministic pseudo-random stream *)
    seed := (!seed * 1103515245) + 12345;
    abs (!seed / 65536) mod m
  in
  for trial = 1 to 20 do
    let n = 1 + rand 60 in
    let pts =
      List.init n (fun _ ->
          mk
            ~ekit:(float_of_int (rand 8) *. 10.0)
            ~aluts:(rand 6 * 1000)
            ~valid:(rand 10 <> 0))
    in
    let fast = Dse.pareto pts in
    let slow = reference_pareto pts in
    Alcotest.(check bool)
      (Printf.sprintf "trial %d: fronts identical (n=%d)" trial n)
      true
      (List.length fast = List.length slow
      && List.for_all2 (fun a b -> a == b) fast slow)
  done

let suite =
  [
    Alcotest.test_case "explore covers variants" `Quick
      test_explore_covers_variants;
    Alcotest.test_case "best is valid max" `Quick test_best_is_valid_max;
    Alcotest.test_case "pipe beats seq" `Quick test_pipe_beats_seq;
    Alcotest.test_case "pareto front" `Quick test_pareto_front_property;
    Alcotest.test_case "guided trace" `Quick test_guided_trace;
    Alcotest.test_case "divisibility respected" `Quick
      test_explore_respects_divisibility;
    Alcotest.test_case "parallel == sequential" `Quick
      test_parallel_equals_sequential;
    Alcotest.test_case "cached sweep == uncached" `Quick
      test_cached_sweep_equals_uncached;
    Alcotest.test_case "repeat sweep hits cache" `Quick
      test_repeat_sweep_hits_cache;
    Alcotest.test_case "cache key sensitivity" `Quick
      test_cache_key_sensitivity;
    Alcotest.test_case "pruning == exhaustive" `Quick
      test_pruning_equivalence;
    Alcotest.test_case "pruned selection jobs-invariant" `Quick
      test_pruned_selection_jobs_invariant;
    Alcotest.test_case "bounds admissible" `Quick test_bounds_admissible;
    Alcotest.test_case "pareto matches reference" `Quick
      test_pareto_matches_reference;
  ]

let test_explore_devices () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let per_device, best =
    Dse.explore_devices
      ~config:{ cfg with nki = 100; max_lanes = 4; jobs = test_jobs } p
  in
  Alcotest.(check int) "all devices explored"
    (List.length Tytra_device.Device.all)
    (List.length per_device);
  List.iter
    (fun (_, pts) ->
      Alcotest.(check bool) "non-empty space" true (pts <> []))
    per_device;
  match best with
  | None -> Alcotest.fail "expected an overall best"
  | Some (dev, pt) ->
      (* the winner is at least as good as every per-device best *)
      List.iter
        (fun (_, pts) ->
          match Dse.best pts with
          | Some b ->
              Alcotest.(check bool) "global max" true
                (Dse.ekit pt >= Dse.ekit b)
          | None -> ())
        per_device;
      Alcotest.(check bool) "winner from the registry" true
        (List.memq dev Tytra_device.Device.all)

let suite =
  suite
  @ [ Alcotest.test_case "cross-device exploration" `Quick
        test_explore_devices ]
