(* DSE tests: exploration coverage, selection, Pareto front, guided
   search, parallel/sequential equivalence and the evaluation cache. *)

open Tytra_dse
open Tytra_front

let prog () = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 ()

let cfg = Dse.default_config
let explore_l ?(config = cfg) ~max_lanes ?(nki = 1) p =
  Dse.explore ~config:{ config with max_lanes; nki } p

let test_explore_covers_variants () =
  let pts = explore_l ~max_lanes:8 (prog ()) in
  let names =
    List.map (fun p -> Transform.to_string p.Dse.dp_variant) pts
  in
  List.iter
    (fun v ->
      Alcotest.(check bool) (v ^ " explored") true (List.mem v names))
    [ "seq"; "pipe"; "par2-pipe"; "par4-pipe"; "par8-pipe" ]

let test_best_is_valid_max () =
  let pts = explore_l ~max_lanes:8 ~nki:100 (prog ()) in
  match Dse.best pts with
  | None -> Alcotest.fail "expected a valid point"
  | Some b ->
      Alcotest.(check bool) "valid" true (Dse.valid b);
      List.iter
        (fun p ->
          if Dse.valid p then
            Alcotest.(check bool) "no better valid point" true
              (Dse.ekit p <= Dse.ekit b +. 1e-9))
        pts

let test_pipe_beats_seq () =
  let pts = explore_l ~max_lanes:4 (prog ()) in
  let find v = List.find (fun p -> p.Dse.dp_variant = v) pts in
  Alcotest.(check bool) "pipeline >> sequential" true
    (Dse.ekit (find Transform.Pipe) > 3.0 *. Dse.ekit (find Transform.Seq))

let test_pareto_front_property () =
  let pts = explore_l ~max_lanes:16 ~nki:100 (prog ()) in
  let front = Dse.pareto pts in
  Alcotest.(check bool) "front non-empty" true (front <> []);
  let area p =
    p.Dse.dp_report.Tytra_cost.Report.rp_estimate
      .Tytra_cost.Resource_model.est_usage
      .Tytra_device.Resources.aluts
  in
  (* no point of the front is dominated by any valid point *)
  List.iter
    (fun f ->
      List.iter
        (fun q ->
          if Dse.valid q && q != f then
            Alcotest.(check bool) "not dominated" false
              (Dse.ekit q > Dse.ekit f && area q < area f))
        pts)
    front

let test_guided_trace () =
  let trace =
    Dse.guided ~config:{ cfg with nki = 100; max_lanes = 16 } (prog ())
  in
  Alcotest.(check bool) "trace starts at pipe" true
    ((List.hd trace).Dse.dp_variant = Transform.Pipe);
  (* lanes double along the trace *)
  let lanes =
    List.map (fun p -> Transform.lanes p.Dse.dp_variant) trace
  in
  let rec doubling = function
    | a :: (b :: _ as tl) -> b = 2 * a && doubling tl
    | _ -> true
  in
  Alcotest.(check bool) "doubling lanes" true (doubling lanes);
  (* the trace stops for a reason: wall hit, lanes exhausted, or oversize *)
  let last = List.nth trace (List.length trace - 1) in
  let stopped_reasonably =
    Transform.lanes last.Dse.dp_variant >= 16
    || last.Dse.dp_report.Tytra_cost.Report.rp_breakdown
         .Tytra_cost.Throughput.bd_limiter
       <> Tytra_cost.Throughput.Compute
    || not (Dse.valid last)
  in
  Alcotest.(check bool) "stop condition" true stopped_reasonably

let test_explore_respects_divisibility () =
  (* 10 points: lanes 3 not applicable, enumerate must skip it *)
  let p =
    { Tytra_front.Expr.p_kernel = (Tytra_kernels.Sor.program ~im:10 ~jm:1 ~km:1 ()).Tytra_front.Expr.p_kernel;
      p_shape = [ 10 ] }
  in
  let pts = explore_l ~max_lanes:8 p in
  List.iter
    (fun pt ->
      Alcotest.(check bool) "applicable" true
        (Transform.applicable p pt.Dse.dp_variant))
    pts

(* ---- parallel evaluation and the memoization cache ---- *)

(* CI exercises both pool widths: TYTRA_JOBS=1 and TYTRA_JOBS=4. *)
let test_jobs =
  match int_of_string_opt (try Sys.getenv "TYTRA_JOBS" with Not_found -> "") with
  | Some j when j >= 1 -> j
  | _ -> 4

let same_points (a : Dse.point list) (b : Dse.point list) =
  List.length a = List.length b
  && List.for_all2
       (fun p q ->
         p.Dse.dp_variant = q.Dse.dp_variant
         && p.Dse.dp_report = q.Dse.dp_report)
       a b

let test_parallel_equals_sequential () =
  let p = prog () in
  (* fresh cache so hits cannot mask an ordering bug in the pool *)
  Dse.clear_cache ();
  let seq =
    Dse.explore
      ~config:{ cfg with nki = 100; jobs = 1; use_cache = false } p
  in
  List.iter
    (fun jobs ->
      Dse.clear_cache ();
      let par =
        Dse.explore
          ~config:{ cfg with nki = 100; jobs; use_cache = false } p
      in
      Alcotest.(check bool)
        (Printf.sprintf "jobs=%d == sequential" jobs)
        true (same_points seq par))
    [ 1; test_jobs ]

let test_cached_sweep_equals_uncached () =
  let p = prog () in
  Dse.clear_cache ();
  let cold = Dse.explore ~config:{ cfg with nki = 100 } p in
  let warm = Dse.explore ~config:{ cfg with nki = 100 } p in
  Alcotest.(check bool) "warm == cold" true (same_points cold warm)

let test_repeat_sweep_hits_cache () =
  let p = prog () in
  Dse.clear_cache ();
  Tytra_telemetry.Control.with_enabled true @@ fun () ->
  Tytra_telemetry.Metrics.reset ();
  let config = { cfg with nki = 100; jobs = test_jobs } in
  let pts = Dse.explore ~config p in
  let s1 = Dse.cache_stats () in
  let _ = Dse.explore ~config p in
  let s2 = Dse.cache_stats () in
  let new_hits = s2.Tytra_exec.Cache.st_hits - s1.Tytra_exec.Cache.st_hits in
  let n = List.length pts in
  Alcotest.(check bool) "second sweep >90% cached" true
    (float_of_int new_hits > 0.9 *. float_of_int n);
  (* and the counters are published through the telemetry registry *)
  match Tytra_telemetry.Metrics.counter_value "dse.cache.hits" with
  | Some h -> Alcotest.(check bool) "telemetry hits counter" true (h > 0.0)
  | None -> Alcotest.fail "dse.cache.hits not registered"

let test_cache_key_sensitivity () =
  (* a different form / nki / device must not serve a stale report *)
  let p = prog () in
  Dse.clear_cache ();
  let ek config = List.map Dse.ekit (Dse.explore ~config p) in
  let base = ek { cfg with nki = 100 } in
  let other_nki = ek { cfg with nki = 1 } in
  let other_form = ek { cfg with nki = 100; form = Tytra_cost.Throughput.FormA } in
  Alcotest.(check bool) "nki changes the evaluation" true (base <> other_nki);
  Alcotest.(check bool) "form changes the evaluation" true (base <> other_form);
  (* identical parameters do hit *)
  let s1 = Dse.cache_stats () in
  let again = ek { cfg with nki = 100 } in
  let s2 = Dse.cache_stats () in
  Alcotest.(check bool) "same-config sweep cached" true
    (s2.Tytra_exec.Cache.st_hits > s1.Tytra_exec.Cache.st_hits);
  Alcotest.(check bool) "cached results identical" true (base = again)

let test_legacy_wrappers () =
  let p = prog () in
  Dse.clear_cache ();
  let via_config = Dse.explore ~config:{ cfg with max_lanes = 4 } p in
  let via_legacy = (Dse.explore_legacy [@warning "-3"]) ~max_lanes:4 p in
  Alcotest.(check bool) "legacy wrapper == config API" true
    (same_points via_config via_legacy)

let suite =
  [
    Alcotest.test_case "explore covers variants" `Quick
      test_explore_covers_variants;
    Alcotest.test_case "best is valid max" `Quick test_best_is_valid_max;
    Alcotest.test_case "pipe beats seq" `Quick test_pipe_beats_seq;
    Alcotest.test_case "pareto front" `Quick test_pareto_front_property;
    Alcotest.test_case "guided trace" `Quick test_guided_trace;
    Alcotest.test_case "divisibility respected" `Quick
      test_explore_respects_divisibility;
    Alcotest.test_case "parallel == sequential" `Quick
      test_parallel_equals_sequential;
    Alcotest.test_case "cached sweep == uncached" `Quick
      test_cached_sweep_equals_uncached;
    Alcotest.test_case "repeat sweep hits cache" `Quick
      test_repeat_sweep_hits_cache;
    Alcotest.test_case "cache key sensitivity" `Quick
      test_cache_key_sensitivity;
    Alcotest.test_case "legacy wrappers" `Quick test_legacy_wrappers;
  ]

let test_explore_devices () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let per_device, best =
    Dse.explore_devices
      ~config:{ cfg with nki = 100; max_lanes = 4; jobs = test_jobs } p
  in
  Alcotest.(check int) "all devices explored"
    (List.length Tytra_device.Device.all)
    (List.length per_device);
  List.iter
    (fun (_, pts) ->
      Alcotest.(check bool) "non-empty space" true (pts <> []))
    per_device;
  match best with
  | None -> Alcotest.fail "expected an overall best"
  | Some (dev, pt) ->
      (* the winner is at least as good as every per-device best *)
      List.iter
        (fun (_, pts) ->
          match Dse.best pts with
          | Some b ->
              Alcotest.(check bool) "global max" true
                (Dse.ekit pt >= Dse.ekit b)
          | None -> ())
        per_device;
      Alcotest.(check bool) "winner from the registry" true
        (List.memq dev Tytra_device.Device.all)

let suite =
  suite
  @ [ Alcotest.test_case "cross-device exploration" `Quick
        test_explore_devices ]
