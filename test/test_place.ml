(* Placement-engine property tests (DESIGN.md §14).

   The three-stage parallel placer (analytic seed + replica-exchange
   annealing) cannot be bit-identical to the sequential annealers, so it
   is held to behavioural contracts instead:

   - deterministic: a fixed seed reproduces the exact placement, and the
     result is independent of the pool width driving the replicas
     (jobs-equivalence — the regression the content-digest seeding
     exists to protect);
   - bounded quality: final wirelength within +2% of the reference
     annealer on every kernel x variant;
   - selection-neutral: DSE best/pareto selections agree across all
     three placement modes;
   - convergent: the analytic seed lets small netlists terminate early,
     visible through the sim.techmap.anneal.early_exit counter. *)

open Tytra_ir
open Tytra_front
module Techmap = Tytra_sim.Techmap
module Prng = Tytra_sim.Prng

let kernels () =
  [
    ("sor", Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 ());
    ("hotspot", Tytra_kernels.Hotspot.program ~rows:16 ~cols:16 ());
    ("lavamd", Tytra_kernels.Lavamd.program ~boxes:16 ());
    ("srad", Tytra_kernels.Srad.program ~rows:16 ~cols:16 ());
  ]

let netlist_of p v =
  let d = Lower.lower p v in
  let summary = Config_tree.classify d in
  let pes = List.filter_map (Ast.find_func d) summary.Config_tree.cs_pes in
  Techmap.build_netlist d pes

let sig_of (pl : Techmap.placement_result) =
  (pl.Techmap.pl_avg_wire, pl.Techmap.pl_moves, pl.Techmap.pl_accepted)

(* ---- determinism ---- *)

let test_parallel_deterministic () =
  List.iter
    (fun (name, p) ->
      let nl = netlist_of p (Transform.ParPipe 4) in
      let seed = Prng.seed_of_string ("place:" ^ name) in
      let a = Techmap.place_parallel ~seed ~effort:40 nl in
      let b = Techmap.place_parallel ~seed ~effort:40 nl in
      Alcotest.(check bool)
        (name ^ ": same seed reproduces the placement")
        true
        (sig_of a = sig_of b);
      let c =
        Techmap.place_parallel ~seed:(Int64.add seed 1L) ~effort:40 nl
      in
      (* not a hard property of annealing, but on every committed
         workload distinct seeds explore distinct trajectories *)
      Alcotest.(check bool)
        (name ^ ": a different seed does different work")
        true
        (sig_of c <> sig_of a || nl.Techmap.n_cells <= 2))
    (kernels ())

let test_parallel_jobs_equivalent () =
  (* the replica ensemble must produce the same placement whether its
     segments run on one domain or several: results may not depend on
     the width of the machine that computed them *)
  List.iter
    (fun (name, p) ->
      let nl = netlist_of p (Transform.ParPipe 8) in
      let seed = Prng.seed_of_string ("place.jobs:" ^ name) in
      let at jobs = sig_of (Techmap.place_parallel ~jobs ~seed ~effort:40 nl) in
      let j1 = at 1 in
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "%s: jobs=%d matches jobs=1" name jobs)
            true
            (at jobs = j1))
        [ 2; 4 ])
    (kernels ())

let test_run_seeded_from_content () =
  (* [run] seeds parallel placement from the design digest, so repeat
     synthesis of the same design is reproducible regardless of what
     else the process placed before it *)
  let d =
    Lower.lower
      (Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 ())
      (Transform.ParPipe 4)
  in
  let other =
    Lower.lower
      (Tytra_kernels.Hotspot.program ~rows:16 ~cols:16 ())
      Transform.Pipe
  in
  let wire () =
    (Techmap.run ~mode:Techmap.Parallel d).Techmap.tm_avg_wire
  in
  let first = wire () in
  ignore (Techmap.run ~mode:Techmap.Parallel other);
  Alcotest.(check (float 1e-9))
    "re-synthesis reproduces the placement after unrelated work" first
    (wire ())

(* ---- quality bound ---- *)

let test_wirelength_bound () =
  List.iter
    (fun (name, p) ->
      List.iter
        (fun v ->
          let nl = netlist_of p v in
          let rng = Prng.of_string ("place.ref:" ^ name) in
          let reference =
            Techmap.place ~mode:Techmap.Reference ~rng ~effort:40 nl
          in
          let par =
            Techmap.place_parallel
              ~seed:(Prng.seed_of_string ("place.par:" ^ name))
              ~effort:40 nl
          in
          let bound =
            (reference.Techmap.pl_avg_wire *. 1.02) +. 1e-9
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s: parallel wire %.4f <= reference %.4f +2%%"
               name (Transform.to_string v) par.Techmap.pl_avg_wire
               reference.Techmap.pl_avg_wire)
            true
            (par.Techmap.pl_avg_wire <= bound))
        [ Transform.Pipe; Transform.ParPipe 2; Transform.ParPipe 4 ])
    (kernels ())

(* ---- DSE selection neutrality ---- *)

let signature pts =
  List.map
    (fun p ->
      ( Transform.to_string p.Tytra_dse.Dse.dp_variant,
        Tytra_dse.Dse.ekit p,
        Tytra_dse.Dse.area p,
        Pprint.design_to_string p.Tytra_dse.Dse.dp_design ))
    pts

let test_dse_selections_mode_independent () =
  let p = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 () in
  let run mode =
    Tytra_dse.Dse.clear_cache ();
    let config =
      {
        Tytra_dse.Dse.default_config with
        max_lanes = 8;
        use_cache = false;
        place_mode = Some mode;
      }
    in
    let pts = Tytra_dse.Dse.explore ~config p in
    ( Option.map (fun b -> signature [ b ]) (Tytra_dse.Dse.best pts),
      signature (Tytra_dse.Dse.pareto pts) )
  in
  let reference = run Techmap.Reference in
  List.iter
    (fun (label, mode) ->
      Alcotest.(check bool)
        (label ^ ": best/pareto identical to reference mode")
        true
        (run mode = reference))
    [ ("incremental", Techmap.Incremental); ("parallel", Techmap.Parallel) ]

(* ---- convergence / early exit ---- *)

let counter name =
  Option.value ~default:0.0 (Tytra_telemetry.Metrics.counter_value name)

let test_analytic_seed_early_exit () =
  (* starting from the relaxation seed, the E11 workload converges in a
     few segments: the schedule must terminate early instead of burning
     the full move budget, and must do strictly less annealing work than
     a random start (the analytic seed's whole point) *)
  let nl =
    netlist_of
      (Tytra_kernels.Sor.program ~im:64 ~jm:64 ~km:64 ())
      (Transform.ParPipe 4)
  in
  let seed = Prng.seed_of_string "place.early_exit" in
  Tytra_telemetry.Control.set_enabled true;
  Fun.protect ~finally:(fun () -> Tytra_telemetry.Control.set_enabled false)
  @@ fun () ->
  let before = counter "sim.techmap.anneal.early_exit" in
  let seeded = Techmap.place_parallel ~seed ~effort:40 nl in
  let after = counter "sim.techmap.anneal.early_exit" in
  Alcotest.(check bool) "early-exit counter incremented" true (after > before);
  let random =
    Techmap.place_parallel ~seed_init:`Random ~seed ~effort:40 nl
  in
  Alcotest.(check bool)
    (Printf.sprintf "seeded moves %d < random-start moves %d"
       seeded.Techmap.pl_moves random.Techmap.pl_moves)
    true
    (seeded.Techmap.pl_moves < random.Techmap.pl_moves)

let suite =
  [
    Alcotest.test_case "parallel placement deterministic given seed" `Quick
      test_parallel_deterministic;
    Alcotest.test_case "parallel placement independent of jobs" `Quick
      test_parallel_jobs_equivalent;
    Alcotest.test_case "run seeds placement from design content" `Quick
      test_run_seeded_from_content;
    Alcotest.test_case "parallel wirelength within +2% of reference" `Quick
      test_wirelength_bound;
    Alcotest.test_case "DSE selections identical across place modes" `Quick
      test_dse_selections_mode_independent;
    Alcotest.test_case "analytic seed triggers early exit" `Quick
      test_analytic_seed_early_exit;
  ]
