(* Execution-engine tests: the Domain pool (ordering, exception
   propagation, sequential equivalence) and the LRU evaluation cache
   (hit/miss accounting, eviction, key construction), plus telemetry
   domain-safety under parallel mutation. *)

open Tytra_exec

(* ---- pool ---- *)

let test_pool_ordering () =
  (* deliberately uneven work per item: stragglers must not reorder *)
  let work i =
    let acc = ref i in
    for _ = 1 to (i mod 7) * 10_000 do
      acc := (!acc * 31) mod 1_000_003
    done;
    (i, !acc)
  in
  let xs = List.init 200 Fun.id in
  let expected = List.map work xs in
  List.iter
    (fun jobs ->
      let got = Pool.with_pool ~jobs (fun p -> Pool.map p work xs) in
      Alcotest.(check bool)
        (Printf.sprintf "ordered at jobs=%d" jobs)
        true (got = expected))
    [ 1; 2; 4; 8 ]

let test_pool_jobs1_is_sequential () =
  (* jobs=1 must evaluate on the calling domain, in order *)
  let seen = ref [] in
  let f i = seen := i :: !seen; i * i in
  let r = Pool.with_pool ~jobs:1 (fun p -> Pool.map p f [ 1; 2; 3; 4 ]) in
  Alcotest.(check (list int)) "results" [ 1; 4; 9; 16 ] r;
  Alcotest.(check (list int)) "evaluation order" [ 4; 3; 2; 1 ] !seen

let test_pool_clamps_jobs () =
  Alcotest.(check int) "jobs 0 -> 1" 1 (Pool.jobs (Pool.create ~jobs:0 ()));
  Alcotest.(check int) "jobs -3 -> 1" 1 (Pool.jobs (Pool.create ~jobs:(-3) ()));
  Alcotest.(check bool) "default >= 1" true (Pool.default_jobs () >= 1)

let test_pool_exception_propagates () =
  List.iter
    (fun jobs ->
      match
        Pool.with_pool ~jobs (fun p ->
            Pool.map p
              (fun i -> if i = 37 then failwith "boom" else i)
              (List.init 100 Fun.id))
      with
      | _ -> Alcotest.failf "jobs=%d: expected Failure" jobs
      | exception Failure m ->
          Alcotest.(check string)
            (Printf.sprintf "jobs=%d propagates" jobs)
            "boom" m)
    [ 1; 4 ]

let test_pool_empty_and_singleton () =
  Alcotest.(check (list int)) "empty" []
    (Pool.with_pool ~jobs:4 (fun p -> Pool.map p (fun x -> x) []));
  Alcotest.(check (list int)) "singleton" [ 7 ]
    (Pool.with_pool ~jobs:4 (fun p -> Pool.map p (fun x -> x + 1) [ 6 ]))

(* ---- cache ---- *)

let test_cache_hit_and_memoization () =
  let c = Cache.create ~capacity:8 () in
  let computed = ref 0 in
  let f () = incr computed; 42 in
  Alcotest.(check int) "miss computes" 42 (Cache.find_or_add c ~key:"k" f);
  Alcotest.(check int) "hit reuses" 42 (Cache.find_or_add c ~key:"k" f);
  Alcotest.(check int) "computed once" 1 !computed;
  let s = Cache.stats c in
  Alcotest.(check int) "one hit" 1 s.Cache.st_hits;
  Alcotest.(check int) "one miss" 1 s.Cache.st_misses;
  Alcotest.(check int) "size" 1 s.Cache.st_size

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c ~key:"a" 1;
  Cache.add c ~key:"b" 2;
  (* touch "a" so "b" is the least recently used *)
  ignore (Cache.find c ~key:"a");
  Cache.add c ~key:"c" 3;
  Alcotest.(check (option int)) "a survives" (Some 1) (Cache.find c ~key:"a");
  Alcotest.(check (option int)) "b evicted" None (Cache.find c ~key:"b");
  Alcotest.(check (option int)) "c present" (Some 3) (Cache.find c ~key:"c");
  Alcotest.(check int) "one eviction" 1 (Cache.stats c).Cache.st_evictions;
  Alcotest.(check int) "bounded" 2 (Cache.stats c).Cache.st_size

let test_cache_clear_and_hit_rate () =
  let c = Cache.create ~capacity:4 () in
  ignore (Cache.find_or_add c ~key:"x" (fun () -> 1));
  ignore (Cache.find_or_add c ~key:"x" (fun () -> 2));
  Alcotest.(check bool) "rate 0.5" true
    (Float.abs (Cache.hit_rate c -. 0.5) < 1e-9);
  Cache.clear c;
  Alcotest.(check int) "emptied" 0 (Cache.length c);
  Cache.reset_stats c;
  Alcotest.(check bool) "rate reset" true (Cache.hit_rate c = 0.0)

let test_digest_key_boundaries () =
  (* component boundaries must not alias *)
  Alcotest.(check bool) "ab|c <> a|bc" true
    (Cache.digest_key [ "ab"; "c" ] <> Cache.digest_key [ "a"; "bc" ]);
  Alcotest.(check bool) "a|b <> ab" true
    (Cache.digest_key [ "a"; "b" ] <> Cache.digest_key [ "ab" ]);
  Alcotest.(check bool) "deterministic" true
    (Cache.digest_key [ "x"; "y" ] = Cache.digest_key [ "x"; "y" ])

let test_cache_concurrent_access () =
  let c = Cache.create ~capacity:64 () in
  let keys = List.init 32 string_of_int in
  let r =
    Pool.with_pool ~jobs:8 (fun p ->
        Pool.map p
          (fun i ->
            let key = List.nth keys (i mod 32) in
            Cache.find_or_add c ~key (fun () -> int_of_string key))
          (List.init 512 Fun.id))
  in
  Alcotest.(check bool) "values correct" true
    (List.for_all2 (fun i v -> v = i mod 32) (List.init 512 Fun.id) r);
  Alcotest.(check bool) "bounded" true (Cache.length c <= 64)

let test_cache_concurrent_stats_consistent () =
  (* hammer one cache from several domains over a key space wider than
     its capacity; the stats must balance exactly: every lookup is a hit
     or a miss, evictions never exceed insertions, size stays bounded *)
  let c = Cache.create ~capacity:64 () in
  let lookups = 4 * 600 in
  ignore
    (Pool.with_pool ~jobs:4 (fun p ->
         Pool.map p
           (fun i ->
             let key = string_of_int ((i * 37) mod 128) in
             Cache.find_or_add c ~key (fun () -> int_of_string key))
           (List.init lookups Fun.id)));
  let s = Cache.stats c in
  Alcotest.(check int) "hits + misses = lookups" lookups
    (s.Cache.st_hits + s.Cache.st_misses);
  Alcotest.(check bool) "evictions <= misses" true
    (s.Cache.st_evictions <= s.Cache.st_misses);
  Alcotest.(check bool) "misses cover the key space" true
    (s.Cache.st_misses >= 128);
  Alcotest.(check int) "size settles at capacity" 64 s.Cache.st_size;
  Alcotest.(check int) "stats size = length" (Cache.length c) s.Cache.st_size

let test_cache_concurrent_no_torn_values () =
  (* values are structured; a torn read would surface as a tuple whose
     halves disagree with each other or with the key *)
  let c = Cache.create ~capacity:32 () in
  let rs =
    Pool.with_pool ~jobs:8 (fun p ->
        Pool.map p
          (fun i ->
            let k = (i * 13) mod 80 in
            let key = string_of_int k in
            (k, Cache.find_or_add c ~key (fun () -> (k, k * k, key))))
          (List.init 1600 Fun.id))
  in
  List.iter
    (fun (k, (k', sq, key)) ->
      Alcotest.(check int) "first field" k k';
      Alcotest.(check int) "derived field" (k * k) sq;
      Alcotest.(check string) "string field" (string_of_int k) key)
    rs

(* ---- telemetry domain-safety under the pool ---- *)

let test_metrics_parallel_increments () =
  Tytra_telemetry.Control.with_enabled true @@ fun () ->
  Tytra_telemetry.Metrics.reset ();
  ignore
    (Pool.with_pool ~jobs:8 (fun p ->
         Pool.map p
           (fun i ->
             Tytra_telemetry.Metrics.incr "exec.test.count";
             Tytra_telemetry.Metrics.observe "exec.test.obs" (float_of_int i))
           (List.init 1000 Fun.id)));
  Alcotest.(check (option (float 0.0))) "no lost increments" (Some 1000.0)
    (Tytra_telemetry.Metrics.counter_value "exec.test.count");
  match Tytra_telemetry.Metrics.histogram_stats "exec.test.obs" with
  | Some s ->
      Alcotest.(check int) "no lost observations" 1000
        s.Tytra_telemetry.Metrics.hs_count
  | None -> Alcotest.fail "histogram missing"

let test_spans_parallel_record () =
  Tytra_telemetry.Control.with_enabled true @@ fun () ->
  Tytra_telemetry.Span.reset ();
  ignore
    (Pool.with_pool ~jobs:4 (fun p ->
         Pool.map p
           (fun i ->
             Tytra_telemetry.Span.with_ ~name:"exec.test.span" (fun () ->
                 Tytra_telemetry.Span.with_ ~name:"exec.test.inner" (fun () -> i)))
           (List.init 100 Fun.id)));
  let evs = Tytra_telemetry.Span.events () in
  Alcotest.(check int) "all spans recorded" 200 (List.length evs);
  (* inner spans carry depth 1 within their own domain's stack *)
  List.iter
    (fun (e : Tytra_telemetry.Span.event) ->
      if e.Tytra_telemetry.Span.ev_name = "exec.test.inner" then
        Alcotest.(check int) "nested depth" 1 e.Tytra_telemetry.Span.ev_depth)
    evs

let suite =
  [
    Alcotest.test_case "pool preserves order" `Quick test_pool_ordering;
    Alcotest.test_case "pool jobs=1 sequential" `Quick
      test_pool_jobs1_is_sequential;
    Alcotest.test_case "pool clamps jobs" `Quick test_pool_clamps_jobs;
    Alcotest.test_case "pool propagates exceptions" `Quick
      test_pool_exception_propagates;
    Alcotest.test_case "pool edge inputs" `Quick test_pool_empty_and_singleton;
    Alcotest.test_case "cache memoizes" `Quick test_cache_hit_and_memoization;
    Alcotest.test_case "cache LRU eviction" `Quick test_cache_lru_eviction;
    Alcotest.test_case "cache clear + hit rate" `Quick
      test_cache_clear_and_hit_rate;
    Alcotest.test_case "digest key boundaries" `Quick
      test_digest_key_boundaries;
    Alcotest.test_case "cache concurrent access" `Quick
      test_cache_concurrent_access;
    Alcotest.test_case "cache concurrent stats consistent" `Quick
      test_cache_concurrent_stats_consistent;
    Alcotest.test_case "cache concurrent no torn values" `Quick
      test_cache_concurrent_no_torn_values;
    Alcotest.test_case "metrics domain-safe" `Quick
      test_metrics_parallel_increments;
    Alcotest.test_case "spans domain-safe" `Quick test_spans_parallel_record;
  ]
