(* Live-observability tests: the structured event log (encode/decode
   round-trip, span/counter hooks), the Prometheus exposition and stable
   registry JSON, the HTTP/Unix-socket snapshot server, the DSE flight
   recorder ring, their integration with an actual sweep, exact
   nearest-rank percentiles, and a multi-domain stress run over every
   exporter at once. *)

module Tel = Tytra_telemetry
module Events = Tytra_telemetry.Events
module Flightrec = Tytra_dse.Flightrec

(* Fresh telemetry state (Test_telemetry's fixture) plus a guarantee
   that the event sink and flight recorder are torn down afterwards. *)
let with_obs f =
  Test_telemetry.with_fresh_telemetry @@ fun () ->
  Fun.protect
    ~finally:(fun () ->
      Events.close ();
      Flightrec.disable ())
    f

(* ------------------------------------------------------------------ *)
(* Event log                                                           *)
(* ------------------------------------------------------------------ *)

let all_event_kinds : Events.event list =
  [
    Sweep_started { kernel = "sor"; space = 26; jobs = 4; prune = true };
    Point_evaluated
      { variant = "par8-pipe"; ekit = 123.5; valid = true; cached = false;
        dur_ns = 42_000L };
    Point_pruned
      { variant = "par64-pipe"; reason = "overflow (ekit_ub=1.5, fits=false)" };
    Point_failed { variant = "par2-vec2"; error = "crashed: Failure \"x\"" };
    Checkpoint_written { path = "/tmp/ck\"quoted\""; points = 7 };
    Span_open { name = "dse.sweep"; depth = 0 };
    Span_close { name = "dse.sweep"; dur_ns = 9_000L; error = None };
    Span_close { name = "ir.parse"; dur_ns = 1_000L; error = Some "boom" };
    Counter_delta { name = "dse.points_evaluated"; delta = 1.0 };
    Sweep_finished { evaluated = 12; pruned = 14; failed = 0; restored = 0 };
  ]

let test_events_roundtrip () =
  with_obs @@ fun () ->
  let buf = Buffer.create 1024 in
  Events.open_memory buf;
  List.iter Events.emit all_event_kinds;
  Events.close ();
  let records, errors = Events.decode_lines (Buffer.contents buf) in
  Alcotest.(check (list (pair int string))) "no decode errors" [] errors;
  Alcotest.(check int) "all events decoded" (List.length all_event_kinds)
    (List.length records);
  List.iteri
    (fun i (r : Events.record) ->
      Alcotest.(check int) "seq is emission order" i r.r_seq;
      (* counting clock: one reading per emit, step 1000 *)
      Alcotest.(check int64) "deterministic timestamp"
        (Int64.of_int (i * 1000))
        r.r_ts_ns;
      Alcotest.(check bool) "event round-trips" true
        (r.r_event = List.nth all_event_kinds i))
    records

let test_events_decode_tolerates_unknown_fields () =
  (* schema policy: additive fields must not break old decoders *)
  let line =
    "{\"v\":1,\"seq\":0,\"ts_ns\":5,\"dom\":0,\"type\":\"point_pruned\",\
     \"variant\":\"par2\",\"reason\":\"r\",\"future_field\":[1,2]}"
  in
  (match Events.decode_line line with
  | Ok { r_event = Events.Point_pruned { variant; reason }; _ } ->
      Alcotest.(check string) "variant" "par2" variant;
      Alcotest.(check string) "reason" "r" reason
  | Ok _ -> Alcotest.fail "decoded to the wrong event"
  | Error e -> Alcotest.fail ("decode failed: " ^ e));
  (match Events.decode_line "{\"v\":99,\"seq\":0,\"ts_ns\":0,\"dom\":0}" with
  | Error e ->
      Alcotest.(check bool) "version mismatch is reported" true
        (String.length e > 0)
  | Ok _ -> Alcotest.fail "future schema version must not decode");
  match Events.decode_line "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage must not decode"

let test_span_and_counter_hooks () =
  with_obs @@ fun () ->
  let buf = Buffer.create 1024 in
  Events.open_memory buf;
  Tel.Span.with_ ~name:"t.outer" (fun () ->
      Tel.Span.with_ ~name:"t.inner" (fun () -> Tel.Metrics.incr "t.count"));
  Tel.Metrics.add "t.acc" 2.5;
  Events.close ();
  let records, errors = Events.decode_lines (Buffer.contents buf) in
  Alcotest.(check (list (pair int string))) "no decode errors" [] errors;
  let evs = List.map (fun (r : Events.record) -> r.r_event) records in
  let expect_mem name p =
    Alcotest.(check bool) name true (List.exists p evs)
  in
  expect_mem "outer opens at depth 0" (function
    | Events.Span_open { name = "t.outer"; depth = 0 } -> true
    | _ -> false);
  expect_mem "inner opens at depth 1" (function
    | Events.Span_open { name = "t.inner"; depth = 1 } -> true
    | _ -> false);
  expect_mem "counter delta 1" (function
    | Events.Counter_delta { name = "t.count"; delta = 1.0 } -> true
    | _ -> false);
  expect_mem "add delta 2.5" (function
    | Events.Counter_delta { name = "t.acc"; delta = 2.5 } -> true
    | _ -> false);
  (* close order: inner closes before outer *)
  let closes =
    List.filter_map
      (function Events.Span_close { name; _ } -> Some name | _ -> None)
      evs
  in
  Alcotest.(check (list string)) "span close order" [ "t.inner"; "t.outer" ]
    closes;
  (* durations come from the counting clock, so they are exact *)
  List.iter
    (function
      | Events.Span_close { dur_ns; _ } ->
          Alcotest.(check bool) "positive deterministic duration" true
            (Int64.compare dur_ns 0L > 0)
      | _ -> ())
    evs

let test_events_disabled_is_free () =
  with_obs @@ fun () ->
  Alcotest.(check bool) "no sink: inactive" false (Events.active ());
  let before = Events.emitted () in
  Events.emit (Events.Counter_delta { name = "x"; delta = 1.0 });
  Alcotest.(check int) "no sink: nothing emitted" before (Events.emitted ())

(* ------------------------------------------------------------------ *)
(* Exposition                                                          *)
(* ------------------------------------------------------------------ *)

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_exposition_format () =
  with_obs @@ fun () ->
  Tel.Metrics.incr ~by:3 "t.requests";
  Tel.Metrics.set "t.depth" 2.5;
  List.iter (fun i -> Tel.Metrics.observe "t.lat" (float_of_int i))
    [ 1; 2; 3; 4; 5 ];
  let text = Tel.Expose.render () in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("exposition has " ^ needle) true
        (contains ~needle text))
    [
      "# TYPE tytra_t_requests counter\n";
      "tytra_t_requests 3\n";
      "# TYPE tytra_t_depth gauge\n";
      "tytra_t_depth 2.5\n";
      "# TYPE tytra_t_lat summary\n";
      "tytra_t_lat{quantile=\"0.5\"} 3\n";
      "tytra_t_lat{quantile=\"0.95\"} 5\n";
      "tytra_t_lat_sum 15\n";
      "tytra_t_lat_count 5\n";
      "# TYPE tytra_telemetry_dropped_spans counter\n";
      "# TYPE tytra_telemetry_events_emitted counter\n";
    ];
  (* every sample line's metric name is exposition-legal: no dots *)
  List.iter
    (fun line ->
      if line <> "" && line.[0] <> '#' then
        let name =
          match String.index_opt line '{' with
          | Some i -> String.sub line 0 i
          | None -> (
              match String.index_opt line ' ' with
              | Some i -> String.sub line 0 i
              | None -> line)
        in
        String.iter
          (fun c ->
            let ok =
              (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
              || (c >= '0' && c <= '9')
              || c = '_' || c = ':'
            in
            if not ok then
              Alcotest.failf "illegal char %C in metric name %S" c name)
          name)
    (String.split_on_char '\n' text)

let test_registry_json_stable () =
  with_obs @@ fun () ->
  Tel.Metrics.incr "b.counter";
  Tel.Metrics.incr "a.counter";
  Tel.Metrics.set "z.gauge" 1.0;
  let j1 = Tel.Expose.registry_json () in
  let j2 = Tel.Expose.registry_json () in
  Alcotest.(check string) "rendering is deterministic" j1 j2;
  (match Test_telemetry.parse_json j1 with
  | Test_telemetry.Obj kvs ->
      (match List.assoc_opt "counters" kvs with
      | Some (Test_telemetry.Obj cs) ->
          let names = List.map fst cs in
          Alcotest.(check (list string)) "counters sorted by name"
            (List.sort compare names) names
      | _ -> Alcotest.fail "no counters object")
  | _ -> Alcotest.fail "registry JSON is not an object");
  let path = Filename.temp_file "tytra_reg" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Tel.Expose.write_registry_json path;
      let ic = open_in_bin path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      Alcotest.(check bool) "file ends with newline" true
        (String.length s > 0 && s.[String.length s - 1] = '\n');
      ignore (Test_telemetry.parse_json (String.trim s)))

let test_perf_profile_json () =
  with_obs @@ fun () ->
  Tel.Metrics.incr ~by:7 "dse.points_evaluated";
  Tel.Metrics.set "bench.e8.sor.space" 26.0;
  let j = Test_telemetry.parse_json (Tel.Expose.perf_profile_json ()) in
  (match Test_telemetry.member "version" j with
  | Some (Test_telemetry.Num v) ->
      Alcotest.(check int) "profile version" Tel.Expose.perf_profile_version
        (int_of_float v)
  | _ -> Alcotest.fail "no version");
  match Test_telemetry.member "counters" j with
  | Some (Test_telemetry.Obj cs) ->
      Alcotest.(check bool) "counter present" true
        (List.mem_assoc "dse.points_evaluated" cs);
      (* gauges are timing-prone; the profile is counters only *)
      Alcotest.(check bool) "gauges excluded" false
        (List.mem_assoc "bench.e8.sor.space" cs)
  | _ -> Alcotest.fail "no counters object"

(* ------------------------------------------------------------------ *)
(* Snapshot server                                                     *)
(* ------------------------------------------------------------------ *)

let read_all fd =
  let buf = Buffer.create 1024 in
  let chunk = Bytes.create 4096 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> ()
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
    | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> ()
  in
  go ();
  Buffer.contents buf

let http_get sockaddr path =
  let fd =
    Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd sockaddr;
      let req = Printf.sprintf "GET %s HTTP/1.0\r\nHost: t\r\n\r\n" path in
      ignore (Unix.write_substring fd req 0 (String.length req));
      read_all fd)

let test_serve_tcp () =
  with_obs @@ fun () ->
  Tel.Metrics.incr ~by:5 "t.served";
  let sv = Tel.Serve.start ~addr:"127.0.0.1:0" () in
  Fun.protect
    ~finally:(fun () -> Tel.Serve.stop sv)
    (fun () ->
      let addr = Tel.Serve.bound_addr sv in
      let port =
        match String.rindex_opt addr ':' with
        | Some i ->
            int_of_string (String.sub addr (i + 1) (String.length addr - i - 1))
        | None -> Alcotest.failf "unparseable bound addr %S" addr
      in
      Alcotest.(check bool) "ephemeral port assigned" true (port > 0);
      let sa = Unix.ADDR_INET (Unix.inet_addr_loopback, port) in
      let metrics = http_get sa "/metrics" in
      Alcotest.(check bool) "/metrics is 200" true
        (contains ~needle:"200 OK" metrics);
      Alcotest.(check bool) "/metrics has the counter" true
        (contains ~needle:"tytra_t_served 5" metrics);
      Alcotest.(check bool) "exposition content type" true
        (contains ~needle:"text/plain; version=0.0.4" metrics);
      let health = http_get sa "/healthz" in
      Alcotest.(check bool) "/healthz ok" true
        (contains ~needle:"200 OK" health && contains ~needle:"ok" health);
      let mjson = http_get sa "/metrics.json" in
      (match String.index_opt mjson '{' with
      | Some i ->
          ignore
            (Test_telemetry.parse_json
               (String.trim
                  (String.sub mjson i (String.length mjson - i))))
      | None -> Alcotest.fail "/metrics.json has no JSON body");
      let missing = http_get sa "/nope" in
      Alcotest.(check bool) "unknown path is 404" true
        (contains ~needle:"404 Not Found" missing);
      Alcotest.(check bool) "served all scrapes" true
        (Tel.Serve.requests_served sv >= 4));
  (* stop is idempotent *)
  Tel.Serve.stop sv

let test_serve_unix_socket () =
  with_obs @@ fun () ->
  let path =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "tytra_test_%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove path with Sys_error _ -> ());
  let sv = Tel.Serve.start ~addr:("unix:" ^ path) () in
  let health = http_get (Unix.ADDR_UNIX path) "/healthz" in
  Alcotest.(check bool) "unix socket /healthz ok" true
    (contains ~needle:"200 OK" health);
  Tel.Serve.stop sv;
  Alcotest.(check bool) "socket file unlinked on stop" false
    (Sys.file_exists path)

let test_serve_bad_addr () =
  match Tel.Serve.start ~addr:"not an address" () with
  | exception Failure _ -> ()
  | sv ->
      Tel.Serve.stop sv;
      Alcotest.fail "nonsense address must be rejected"

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                     *)
(* ------------------------------------------------------------------ *)

let test_flightrec_ring () =
  with_obs @@ fun () ->
  Flightrec.enable ~capacity:4 ();
  Alcotest.(check bool) "enabled" true (Flightrec.is_enabled ());
  for i = 0 to 6 do
    Flightrec.note
      ~variant:(Printf.sprintf "par%d" i)
      (if i mod 2 = 0 then
         Flightrec.Evaluated
           { fo_ekit = float_of_int i; fo_valid = true; fo_cached = false;
             fo_dur_ns = 10L }
       else Flightrec.Pruned "dominated")
  done;
  Alcotest.(check int) "recorded counts everything" 7 (Flightrec.recorded ());
  Alcotest.(check int) "overwritten = recorded - capacity" 3
    (Flightrec.overwritten ());
  let es = Flightrec.entries () in
  Alcotest.(check int) "ring keeps the last capacity entries" 4
    (List.length es);
  Alcotest.(check (list int)) "oldest-first, newest retained" [ 3; 4; 5; 6 ]
    (List.map (fun (e : Flightrec.entry) -> e.fr_seq) es);
  let path = Filename.temp_file "tytra_flight" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Flightrec.dump path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "header + retained entries" 5 (List.length lines);
      List.iter (fun l -> ignore (Test_telemetry.parse_json l)) lines;
      let header = Test_telemetry.parse_json (List.hd lines) in
      let num k =
        match Test_telemetry.member k header with
        | Some (Test_telemetry.Num v) -> int_of_float v
        | _ -> Alcotest.failf "header lacks %s" k
      in
      Alcotest.(check int) "header version" 1 (num "flight_recorder");
      Alcotest.(check int) "header capacity" 4 (num "capacity");
      Alcotest.(check int) "header recorded" 7 (num "recorded");
      Alcotest.(check int) "header overwritten" 3 (num "overwritten"));
  Flightrec.disable ();
  Alcotest.(check bool) "disable drops the ring" false
    (Flightrec.is_enabled ());
  Flightrec.note ~variant:"x" Flightrec.Restored;
  Alcotest.(check int) "disabled note is a no-op" 0 (Flightrec.recorded ())

(* ------------------------------------------------------------------ *)
(* Integration with a real sweep                                       *)
(* ------------------------------------------------------------------ *)

let test_explore_integration () =
  with_obs @@ fun () ->
  let buf = Buffer.create 4096 in
  Events.open_memory buf;
  Flightrec.enable ();
  let last_progress = ref None in
  let prog = Tytra_kernels.Sor.program ~im:8 ~jm:8 ~km:8 () in
  let config =
    { Tytra_dse.Dse.default_config with
      max_lanes = 8; jobs = 1; use_cache = false;
      on_progress = Some (fun p -> last_progress := Some p) }
  in
  Tytra_dse.Dse.clear_cache ();
  let sw = Tytra_dse.Dse.explore_sweep ~config prog in
  Events.close ();
  let st = sw.Tytra_dse.Dse.sw_stats in
  let pruned =
    st.Tytra_dse.Dse.ss_pruned_resource + st.Tytra_dse.Dse.ss_pruned_incumbent
  in
  (* the flight recorder saw every candidate the sweep decided on *)
  Alcotest.(check int) "flight records evaluated + pruned"
    (st.Tytra_dse.Dse.ss_evaluated + pruned)
    (Flightrec.recorded ());
  let records, errors = Events.decode_lines (Buffer.contents buf) in
  Alcotest.(check (list (pair int string))) "event log decodes clean" []
    errors;
  let find_map f =
    List.find_map (fun (r : Events.record) -> f r.r_event) records
  in
  (match
     find_map (function
       | Events.Sweep_started { kernel; space; jobs; prune } ->
           Some (kernel, space, jobs, prune)
       | _ -> None)
   with
  | Some (kernel, space, jobs, prune) ->
      Alcotest.(check string) "sweep_started kernel" "sor" kernel;
      Alcotest.(check int) "sweep_started space" st.Tytra_dse.Dse.ss_space
        space;
      Alcotest.(check int) "sweep_started jobs" 1 jobs;
      Alcotest.(check bool) "sweep_started prune" true prune
  | None -> Alcotest.fail "no sweep_started event");
  (match
     find_map (function
       | Events.Sweep_finished { evaluated; pruned; failed; restored } ->
           Some (evaluated, pruned, failed, restored)
       | _ -> None)
   with
  | Some (evaluated, p, failed, restored) ->
      Alcotest.(check int) "sweep_finished evaluated"
        st.Tytra_dse.Dse.ss_evaluated evaluated;
      Alcotest.(check int) "sweep_finished pruned" pruned p;
      Alcotest.(check int) "sweep_finished failed" 0 failed;
      Alcotest.(check int) "sweep_finished restored" 0 restored
  | None -> Alcotest.fail "no sweep_finished event");
  let n_point_events =
    List.length
      (List.filter
         (fun (r : Events.record) ->
           match r.r_event with
           | Events.Point_evaluated _ -> true
           | _ -> false)
         records)
  in
  Alcotest.(check int) "one point_evaluated per evaluation"
    st.Tytra_dse.Dse.ss_evaluated n_point_events;
  match !last_progress with
  | None -> Alcotest.fail "on_progress never fired"
  | Some p ->
      Alcotest.(check int) "final progress evaluated"
        st.Tytra_dse.Dse.ss_evaluated p.Tytra_dse.Dse.pr_evaluated;
      Alcotest.(check int) "final progress pruned" pruned
        p.Tytra_dse.Dse.pr_pruned;
      Alcotest.(check int) "final progress space" st.Tytra_dse.Dse.ss_space
        p.Tytra_dse.Dse.pr_space

(* ------------------------------------------------------------------ *)
(* Multi-domain stress: every exporter at once                         *)
(* ------------------------------------------------------------------ *)

let test_multidomain_stress () =
  with_obs @@ fun () ->
  let buf = Buffer.create 65536 in
  Events.open_memory buf;
  let n_domains = 4 and per_domain = 50 in
  let worker k () =
    for i = 1 to per_domain do
      Tel.Span.with_ ~name:(Printf.sprintf "stress.d%d" k) (fun () ->
          Tel.Metrics.incr "stress.count";
          Tel.Metrics.observe "stress.lat" (float_of_int i);
          Events.emit
            (Events.Point_pruned
               { variant = Printf.sprintf "d%d-%d" k i; reason = "stress" }))
    done
  in
  let domains = List.init n_domains (fun k -> Domain.spawn (worker k)) in
  List.iter Domain.join domains;
  Events.close ();
  (* counters aggregated exactly across domains *)
  Alcotest.(check (option (float 0.0))) "counter total"
    (Some (float_of_int (n_domains * per_domain)))
    (Tel.Metrics.counter_value "stress.count");
  (* event log: loss-accounted and fully decodable *)
  let records, errors = Events.decode_lines (Buffer.contents buf) in
  Alcotest.(check (list (pair int string))) "stress log decodes clean" []
    errors;
  Alcotest.(check int) "emitted accounts every line" (Events.emitted ())
    (List.length records);
  Alcotest.(check int) "no write errors" 0 (Events.write_errors ());
  (* seq is a gapless total order even under contention *)
  List.iteri
    (fun i (r : Events.record) ->
      Alcotest.(check int) "gapless seq" i r.r_seq)
    records;
  (* every domain's full output is present *)
  for k = 0 to n_domains - 1 do
    let mine =
      List.filter
        (fun (r : Events.record) ->
          match r.r_event with
          | Events.Point_pruned { variant; _ } ->
              String.length variant > 1
              && variant.[1] = Char.chr (Char.code '0' + k)
          | _ -> false)
        records
    in
    Alcotest.(check int)
      (Printf.sprintf "domain %d events all present" k)
      per_domain (List.length mine)
  done;
  (* the other exporters stay well-formed over the same state *)
  ignore (Test_telemetry.parse_json (Tel.Export.to_chrome_json ()));
  ignore (Test_telemetry.parse_json (Tel.Export.report_json ()));
  ignore (Test_telemetry.parse_json (Tel.Expose.registry_json ()));
  let text = Tel.Expose.render () in
  Alcotest.(check bool) "exposition sees the stress counter" true
    (contains
       ~needle:
         (Printf.sprintf "tytra_stress_count %d" (n_domains * per_domain))
       text);
  Alcotest.(check int) "no spans dropped" 0 (Tel.Span.dropped_events ())

(* ------------------------------------------------------------------ *)
(* Percentiles: nearest-rank vs an exact integer-arithmetic reference   *)
(* ------------------------------------------------------------------ *)

let test_percentile_exact () =
  (* the motivating case: 0.95 *. 20. = 19.000000000000004, which once
     pushed ceil one rank too high (p95 of 1..20 read 20, not 19) *)
  let upto n = List.init n (fun i -> float_of_int (i + 1)) in
  Alcotest.(check (float 0.0)) "p95 of 1..20 is rank 19" 19.0
    (Tel.Metrics.percentile (upto 20) 20 0.95);
  Alcotest.(check (float 0.0)) "p50 of 1..20 is rank 10" 10.0
    (Tel.Metrics.percentile (upto 20) 20 0.5);
  Alcotest.(check (float 0.0)) "single sample" 7.5
    (Tel.Metrics.percentile [ 7.5 ] 1 0.95);
  Alcotest.(check (float 0.0)) "empty" 0.0 (Tel.Metrics.percentile [] 0 0.95);
  Alcotest.(check (float 0.0)) "q=1 is the max" 20.0
    (Tel.Metrics.percentile (upto 20) 20 1.0);
  (* heavy tail: one outlier must not leak into p95 at n = 20 *)
  let heavy = List.sort compare (1e12 :: List.init 19 (fun _ -> 1.0)) in
  Alcotest.(check (float 0.0)) "heavy tail p95 stays at the body" 1.0
    (Tel.Metrics.percentile heavy 20 0.95);
  Alcotest.(check (float 0.0)) "heavy tail p100 is the outlier" 1e12
    (Tel.Metrics.percentile heavy 20 1.0);
  (* exhaustive: every q = p/100, n = 1..40 against exact nearest-rank
     computed in integer arithmetic (rank = ceil(p*n/100)) *)
  for n = 1 to 40 do
    let sorted = upto n in
    for p = 1 to 100 do
      let rank = ((p * n) + 99) / 100 in
      let expected = float_of_int rank in
      let got =
        Tel.Metrics.percentile sorted n (float_of_int p /. 100.0)
      in
      if got <> expected then
        Alcotest.failf "percentile n=%d q=%d%%: got %g, want %g" n p got
          expected
    done
  done

let test_histogram_stats_percentiles () =
  with_obs @@ fun () ->
  List.iter (fun i -> Tel.Metrics.observe "t.h" (float_of_int i))
    (List.init 20 (fun i -> i + 1));
  match Tel.Metrics.histogram_stats "t.h" with
  | None -> Alcotest.fail "histogram missing"
  | Some s ->
      Alcotest.(check (float 0.0)) "hist p95" 19.0 s.Tel.Metrics.hs_p95;
      Alcotest.(check (float 0.0)) "hist p50" 10.0 s.Tel.Metrics.hs_p50;
      Alcotest.(check (float 0.0)) "hist max" 20.0 s.Tel.Metrics.hs_max;
      Alcotest.(check int) "hist count" 20 s.Tel.Metrics.hs_count

(* ------------------------------------------------------------------ *)

let suite =
  [
    Alcotest.test_case "event log encode/decode round-trip" `Quick
      test_events_roundtrip;
    Alcotest.test_case "event decoder tolerates additive fields" `Quick
      test_events_decode_tolerates_unknown_fields;
    Alcotest.test_case "span and counter hooks emit events" `Quick
      test_span_and_counter_hooks;
    Alcotest.test_case "no sink means no events" `Quick
      test_events_disabled_is_free;
    Alcotest.test_case "Prometheus exposition format" `Quick
      test_exposition_format;
    Alcotest.test_case "registry JSON is stable and sorted" `Quick
      test_registry_json_stable;
    Alcotest.test_case "perf profile is versioned counters" `Quick
      test_perf_profile_json;
    Alcotest.test_case "snapshot server over TCP" `Quick test_serve_tcp;
    Alcotest.test_case "snapshot server over a Unix socket" `Quick
      test_serve_unix_socket;
    Alcotest.test_case "snapshot server rejects bad addresses" `Quick
      test_serve_bad_addr;
    Alcotest.test_case "flight recorder ring and dump" `Quick
      test_flightrec_ring;
    Alcotest.test_case "sweep integration: events, flight, progress" `Quick
      test_explore_integration;
    Alcotest.test_case "multi-domain stress over every exporter" `Quick
      test_multidomain_stress;
    Alcotest.test_case "nearest-rank percentile is exact" `Quick
      test_percentile_exact;
    Alcotest.test_case "histogram stats percentiles" `Quick
      test_histogram_stats_percentiles;
  ]
