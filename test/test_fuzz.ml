(* Parser totality: [Parser.parse_result] must never raise, whatever
   bytes it is fed — a fixed corpus of nasty inputs plus deterministic
   random-byte, token-soup and mutation generators. *)

open Tytra_ir

let never_raises ~what src =
  match Parser.parse_result src with
  | Ok _ | Error _ -> ()
  | exception e ->
      Alcotest.failf "parse_result raised %s on %s (%d bytes)"
        (Printexc.to_string e) what (String.length src)

(* dune runtest runs the binary from _build/default/test, where the
   glob dep materializes the corpus; dune exec runs from the root *)
let corpus_dir =
  if Sys.file_exists "corpus" then "corpus" else "test/corpus"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let corpus_files () =
  Sys.readdir corpus_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".tirl")
  |> List.sort compare

let test_corpus () =
  let files = corpus_files () in
  Alcotest.(check bool) "corpus present" true (List.length files >= 7);
  List.iter
    (fun f ->
      let src = read_file (Filename.concat corpus_dir f) in
      never_raises ~what:f src;
      (* the seed entry must stay on the Ok channel *)
      if f = "valid.tirl" then
        match Parser.parse_result ~file:f src with
        | Ok d ->
            Alcotest.(check int) "valid.tirl functions" 2
              (List.length d.Ast.d_funcs)
        | Error e -> Alcotest.failf "valid.tirl: %s" (Error.to_string e))
    files

let test_random_bytes () =
  let st = Random.State.make [| 0x7177a5 |] in
  for i = 1 to 300 do
    let len = Random.State.int st 400 in
    let src =
      String.init len (fun _ -> Char.chr (Random.State.int st 256))
    in
    never_raises ~what:(Printf.sprintf "random case %d" i) src
  done

let test_token_soup () =
  (* structurally plausible fragments reach deeper parser states than
     raw bytes do *)
  let atoms =
    [| "define"; "void"; "@main"; "@f"; "%x"; "%y"; "memobj"; "stream";
       "istream"; "ostream"; "pattern"; "cont"; "strided"; "addrspace";
       "global"; "size"; "init"; "call"; "add"; "mul"; "offset"; "mov";
       "seq"; "pipe"; "par"; "ui18"; "ui32"; "("; ")"; "{"; "}"; ",";
       "="; "!"; "!0"; "!\"CONT\""; "0"; "-1"; "+48"; "3.5"; "1e9";
       "99999999999999999999"; "\"s\""; "\n"; ";comment\n" |]
  in
  let st = Random.State.make [| 0xbeef |] in
  for i = 1 to 300 do
    let n = 1 + Random.State.int st 60 in
    let src =
      String.concat " "
        (List.init n (fun _ -> atoms.(Random.State.int st (Array.length atoms))))
    in
    never_raises ~what:(Printf.sprintf "token soup %d" i) src
  done

let test_mutations () =
  (* flip bytes of a valid design: every mutant must parse or fail
     cleanly, never crash *)
  let base = read_file (Filename.concat corpus_dir "valid.tirl") in
  let st = Random.State.make [| 0x5eed |] in
  for i = 1 to 300 do
    let b = Bytes.of_string base in
    let flips = 1 + Random.State.int st 4 in
    for _ = 1 to flips do
      Bytes.set b
        (Random.State.int st (Bytes.length b))
        (Char.chr (Random.State.int st 256))
    done;
    never_raises ~what:(Printf.sprintf "mutant %d" i) (Bytes.to_string b)
  done

let test_pathological_shapes () =
  (* deep nesting must not blow the stack through parse_result *)
  never_raises ~what:"deep braces" (String.make 200_000 '{');
  never_raises ~what:"deep parens"
    ("define void @f " ^ String.make 200_000 '(');
  never_raises ~what:"long comment" (";" ^ String.make 500_000 'x');
  never_raises ~what:"many banged ints"
    ("@main.p = addrspace(1) ui18 "
    ^ String.concat " " (List.init 5_000 (fun i -> "!" ^ string_of_int i)));
  never_raises ~what:"huge float exponent" "%m = memobj global ui18 size 1e999999";
  never_raises ~what:"nul bytes" "define \x00void @f\x00 () seq { }"

let suite =
  [
    Alcotest.test_case "corpus" `Quick test_corpus;
    Alcotest.test_case "random bytes" `Quick test_random_bytes;
    Alcotest.test_case "token soup" `Quick test_token_soup;
    Alcotest.test_case "mutations of valid input" `Quick test_mutations;
    Alcotest.test_case "pathological shapes" `Quick test_pathological_shapes;
  ]
