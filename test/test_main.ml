(* Aggregated test runner for the whole repository. *)

let () =
  Alcotest.run "tytra"
    [
      ("ty", Test_ty.suite);
      ("parser", Test_parser.suite);
      ("validate", Test_validate.suite);
      ("analysis", Test_analysis.suite);
      ("interp", Test_interp.suite);
      ("front", Test_front.suite);
      ("optim", Test_optim.suite);
      ("fortran", Test_fortran.suite);
      ("cfront", Test_cfront.suite);
      ("chain", Test_chain.suite);
      ("formsel", Test_formsel.suite);
      ("hdl", Test_hdl.suite);
      ("cost", Test_cost.suite);
      ("device", Test_device.suite);
      ("sim", Test_sim.suite);
      ("kernels", Test_kernels.suite);
      ("telemetry", Test_telemetry.suite);
      ("observability", Test_observability.suite);
      ("exec", Test_exec.suite);
      ("dse", Test_dse.suite);
      ("resilience", Test_resilience.suite);
      ("fuzz", Test_fuzz.suite);
      ("fastpath", Test_fastpath.suite);
      ("place", Test_place.suite);
      ("streambench", Test_streambench.suite);
      ("robustness", Test_robustness.suite);
      ("integration", Test_integration.suite);
      ("engine", Test_engine.suite);
      ("selfheal", Test_selfheal.suite);
    ]
