(* Self-healing serve, end to end (DESIGN.md §16): SIGKILL both shards
   of a live 2-shard daemon in the middle of a streamed explore and
   assert the E10 contract: the interrupted stream ends cleanly (EOF,
   never a hang; every complete frame parses), the supervisor restarts
   the shards, and the restarted shard answers the pre-crash request
   from its replayed response-cache journal — a HIT with zero misses,
   byte-identical to the uninterrupted run. *)

module Engine = Tytra_engine.Engine
module Protocol = Tytra_engine.Protocol
module Jsenc = Tytra_telemetry.Jsenc

let find_existing candidates = List.find_opt Sys.file_exists candidates

let tybec_exe () =
  find_existing [ "../bin/tybec.exe"; "_build/default/bin/tybec.exe" ]

let dev = Tytra_device.Device.stratixv_gsd8

let explore_req ~size =
  Engine.Explore
    {
      Engine.x_kernel = Engine.Sor;
      x_size = size;
      x_max_lanes = 4;
      x_device = dev;
      x_form = Tytra_cost.Throughput.FormB;
      x_nki = 1;
      x_jobs = 1;
      x_prune = false;
      x_retries = 0;
      x_deadline_s = None;
      x_best_effort = false;
      x_checkpoint = None;
      x_checkpoint_every = 32;
      x_resume = None;
      x_place_mode = None;
    }

(* ------------------------------------------------------------------ *)
(* Deadline-bounded socket plumbing: nothing in this test may block    *)
(* forever — a hang is precisely the bug class it exists to catch.     *)
(* ------------------------------------------------------------------ *)

let sockaddr_of_port port =
  Unix.ADDR_INET (Unix.inet_addr_loopback, port)

let connect_within ~timeout_s port =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    match Unix.connect fd (sockaddr_of_port port) with
    | () -> Some fd
    | exception Unix.Unix_error _ ->
        Unix.close fd;
        if Unix.gettimeofday () >= deadline then None
        else begin
          Unix.sleepf 0.05;
          go ()
        end
  in
  go ()

(* Read until EOF, failing the test if the peer stalls longer than
   [timeout_s] between bytes. *)
let read_all_within ~timeout_s ~what fd =
  let buf = Bytes.create 8192 in
  let b = Buffer.create 4096 in
  let rec go () =
    match Unix.select [ fd ] [] [] timeout_s with
    | [], _, _ -> Alcotest.failf "%s: peer stalled > %.0fs" what timeout_s
    | _ -> (
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 -> Buffer.contents b
        | n ->
            Buffer.add_subbytes b buf 0 n;
            go ()
        | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
            Buffer.contents b)
  in
  go ()

let body_of raw =
  let rec find i =
    if i + 3 >= String.length raw then String.length raw
    else if
      raw.[i] = '\r' && raw.[i + 1] = '\n' && raw.[i + 2] = '\r'
      && raw.[i + 3] = '\n'
    then i + 4
    else find (i + 1)
  in
  let s = find 0 in
  String.sub raw s (String.length raw - s)

let http ~timeout_s ~what port meth path body =
  match connect_within ~timeout_s port with
  | None -> Alcotest.failf "%s: connect to port %d timed out" what port
  | Some fd ->
      Fun.protect
        ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
        (fun () ->
          let req =
            Printf.sprintf "%s %s HTTP/1.0\r\ncontent-length: %d\r\n\r\n%s"
              meth path (String.length body) body
          in
          ignore (Unix.write_substring fd req 0 (String.length req));
          read_all_within ~timeout_s ~what fd)

(* ------------------------------------------------------------------ *)
(* Admin-plane scraping                                                *)
(* ------------------------------------------------------------------ *)

type shard_view = {
  v_pid : int;
  v_state : string;
  v_up : bool;
  v_counters : (string * float) list;
}

let scrape_shards admin_port =
  let raw =
    http ~timeout_s:5.0 ~what:"admin scrape" admin_port "GET" "/metrics.json"
      ""
  in
  match Jsenc.parse (body_of raw) with
  | Error m -> Alcotest.failf "metrics.json unparseable: %s" m
  | Ok j -> (
      match Jsenc.member "shards" j with
      | Some (Jsenc.List shards) ->
          List.filter_map
            (fun s ->
              match
                (Jsenc.num_member "pid" s, Jsenc.str_member "state" s)
              with
              | Some pid, Some state ->
                  let counters =
                    match Jsenc.member "metrics" s with
                    | Some m -> (
                        match Jsenc.member "counters" m with
                        | Some (Jsenc.Obj kvs) ->
                            List.filter_map
                              (fun (k, v) ->
                                match v with
                                | Jsenc.Num f -> Some (k, f)
                                | _ -> None)
                              kvs
                        | _ -> [])
                    | None -> []
                  in
                  Some
                    {
                      v_pid = int_of_float pid;
                      v_state = state;
                      v_up =
                        Option.value ~default:false (Jsenc.bool_member "up" s);
                      v_counters = counters;
                    }
              | _ -> None)
            shards
      | _ -> Alcotest.fail "metrics.json has no shards array")

let counter_of v name =
  Option.value ~default:0.0 (List.assoc_opt name v.v_counters)

let wait_shards ~timeout_s ~what admin_port pred =
  let deadline = Unix.gettimeofday () +. timeout_s in
  let rec go () =
    let shards = scrape_shards admin_port in
    if pred shards then shards
    else if Unix.gettimeofday () >= deadline then
      Alcotest.failf "%s: condition not reached in %.0fs" what timeout_s
    else begin
      Unix.sleepf 0.25;
      go ()
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* The test                                                            *)
(* ------------------------------------------------------------------ *)

let test_sigkill_mid_explore () =
  match tybec_exe () with
  | None -> Alcotest.skip ()
  | Some tybec ->
      let port = 21000 + (Unix.getpid () mod 800) in
      let admin_port = port + 1000 in
      let addr = Printf.sprintf "127.0.0.1:%d" port in
      let admin_addr = Printf.sprintf "127.0.0.1:%d" admin_port in
      let journal =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "tytra-selfheal-%d.journal" (Unix.getpid ()))
      in
      let log =
        Filename.concat
          (Filename.get_temp_dir_name ())
          (Printf.sprintf "tytra-selfheal-%d.log" (Unix.getpid ()))
      in
      let cleanup_files () =
        List.iter
          (fun p -> try Sys.remove p with Sys_error _ -> ())
          [ journal ^ ".shard-0"; journal ^ ".shard-1"; log ]
      in
      cleanup_files ();
      let log_fd =
        Unix.openfile log [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o600
      in
      let supervisor =
        Unix.create_process tybec
          [|
            tybec; "serve"; "--addr"; addr; "--admin-addr"; admin_addr;
            "--shards"; "2"; "--jobs"; "1"; "--workers"; "2";
            "--cache-journal"; journal;
          |]
          Unix.stdin Unix.stdout log_fd
      in
      Unix.close log_fd;
      Fun.protect
        ~finally:(fun () ->
          (try Unix.kill supervisor Sys.sigterm
           with Unix.Unix_error _ -> ());
          let rec reap tries =
            match Unix.waitpid [ Unix.WNOHANG ] supervisor with
            | 0, _ when tries > 0 ->
                Unix.sleepf 0.25;
                reap (tries - 1)
            | 0, _ ->
                (try Unix.kill supervisor Sys.sigkill
                 with Unix.Unix_error _ -> ());
                ignore (Unix.waitpid [] supervisor)
            | _ -> ()
            | exception Unix.Unix_error (Unix.ECHILD, _, _) -> ()
          in
          reap 40;
          cleanup_files ())
        (fun () ->
          (* both shards up before we do anything *)
          ignore
            (wait_shards ~timeout_s:20.0 ~what:"startup" admin_port
               (fun shards ->
                 List.length shards = 2
                 && List.for_all (fun v -> v.v_state = "up" && v.v_up) shards));
          (* the uninterrupted reference run: a cacheable explore,
             journaled by whichever shard serves it *)
          let warm_body = Protocol.encode_request (explore_req ~size:8) in
          let reference =
            let raw =
              http ~timeout_s:60.0 ~what:"warm explore" port "POST"
                "/v1/submit" warm_body
            in
            match Protocol.decode_reply (body_of raw) with
            | Ok (Protocol.Reply_ok { rp_text; _ }) -> rp_text
            | Ok (Protocol.Reply_error { re_kind; _ }) ->
                Alcotest.failf "warm explore refused: %s" re_kind
            | Error m -> Alcotest.failf "warm reply undecodable: %s" m
          in
          let victims =
            List.filter (fun v -> v.v_up) (scrape_shards admin_port)
          in
          Alcotest.(check int) "two shards to kill" 2 (List.length victims);
          (* open a streamed explore and wait for the first frame *)
          let sfd =
            match connect_within ~timeout_s:5.0 port with
            | Some fd -> fd
            | None -> Alcotest.fail "stream connect timed out"
          in
          Fun.protect
            ~finally:(fun () ->
              try Unix.close sfd with Unix.Unix_error _ -> ())
            (fun () ->
              let sbody =
                Protocol.encode_request ~stream:true (explore_req ~size:20)
              in
              let sreq =
                Printf.sprintf
                  "POST /v1/submit HTTP/1.0\r\ncontent-length: %d\r\n\r\n%s"
                  (String.length sbody) sbody
              in
              ignore (Unix.write_substring sfd sreq 0 (String.length sreq));
              let buf = Bytes.create 8192 in
              let acc = Buffer.create 4096 in
              let saw_frame s =
                match String.index_opt (body_of s) '\n' with
                | Some _ -> true
                | None -> false
              in
              let deadline = Unix.gettimeofday () +. 30.0 in
              let rec until_frame () =
                if saw_frame (Buffer.contents acc) then ()
                else if Unix.gettimeofday () >= deadline then
                  Alcotest.fail "no progress frame within 30s"
                else
                  match Unix.select [ sfd ] [] [] 1.0 with
                  | [], _, _ -> until_frame ()
                  | _ -> (
                      match Unix.read sfd buf 0 (Bytes.length buf) with
                      | 0 -> Alcotest.fail "stream ended before the kill"
                      | n ->
                          Buffer.add_subbytes acc buf 0 n;
                          until_frame ())
              in
              until_frame ();
              (* kill every shard mid-stream *)
              List.iter
                (fun v ->
                  try Unix.kill v.v_pid Sys.sigkill
                  with Unix.Unix_error _ -> ())
                victims;
              (* the stream must END — EOF or reset, never a hang *)
              let tail =
                read_all_within ~timeout_s:15.0
                  ~what:"interrupted stream" sfd
              in
              Buffer.add_string acc tail;
              (* every COMPLETE line of what we received must be a
                 well-formed frame: the shard died, the wire stayed
                 typed *)
              let lines =
                String.split_on_char '\n' (body_of (Buffer.contents acc))
              in
              let complete =
                match List.rev lines with
                | _partial :: rest -> List.rev rest
                | [] -> []
              in
              List.iter
                (fun line ->
                  if String.trim line <> "" then
                    match Protocol.decode_frame line with
                    | Ok _ -> ()
                    | Error m ->
                        Alcotest.failf "corrupt frame after kill: %s in %S" m
                          line)
                complete);
          (* supervisor restarts both shards; the journaled shard
             replays its cache on the way up. Fresh pids distinguish a
             real restart from a stale scrape of the corpses. *)
          let victim_pids = List.map (fun v -> v.v_pid) victims in
          ignore
            (wait_shards ~timeout_s:40.0 ~what:"recovery" admin_port
               (fun shards ->
                 List.length shards = 2
                 && List.for_all
                      (fun v ->
                        v.v_state = "up" && v.v_up
                        && not (List.mem v.v_pid victim_pids))
                      shards
                 && List.exists
                      (fun v -> counter_of v "engine.journal.replayed" >= 1.0)
                 shards));
          (* resubmit the pre-crash request until it lands on the
             replayed shard: served as a HIT with zero misses (only a
             journal replay can produce a hit on a fresh process), and
             byte-identical to the uninterrupted run *)
          let deadline = Unix.gettimeofday () +. 30.0 in
          let rec warm_hit () =
            let raw =
              http ~timeout_s:60.0 ~what:"post-restart explore" port "POST"
                "/v1/submit" warm_body
            in
            let answered =
              match Protocol.decode_reply (body_of raw) with
              | Ok (Protocol.Reply_ok { rp_text; _ }) ->
                  Alcotest.(check string)
                    "post-restart answer byte-identical to uninterrupted run"
                    reference rp_text;
                  true
              | Ok (Protocol.Reply_error { re_kind = "overloaded"; _ }) ->
                  (* the breaker is still draining the recovery window:
                     typed shedding, retry *)
                  false
              | Ok (Protocol.Reply_error { re_kind; _ }) ->
                  Alcotest.failf "post-restart explore refused: %s" re_kind
              | Error m ->
                  Alcotest.failf "post-restart reply undecodable: %s" m
            in
            let served_from_journal =
              answered
              &&
              List.exists
                (fun v ->
                  v.v_up
                  && counter_of v "engine.journal.replayed" >= 1.0
                  && counter_of v "engine.response_cache.hits" >= 1.0
                  && counter_of v "engine.response_cache.misses" = 0.0)
                (scrape_shards admin_port)
            in
            if served_from_journal then ()
            else if Unix.gettimeofday () >= deadline then
              Alcotest.fail
                "no restarted shard served the warm request from its journal"
            else begin
              Unix.sleepf 0.5;
              warm_hit ()
            end
          in
          warm_hit ())

let suite =
  [
    Alcotest.test_case "SIGKILL mid-explore: typed stream end + journaled warm restart"
      `Slow test_sigkill_mid_explore;
  ]
