(* Resilience layer: cooperative deadlines, Pool.map_result retry
   semantics (under a virtual clock), the deterministic fault-injection
   harness, checkpoint save/load/corruption, and the DSE degraded-mode /
   resume guarantees — best/pareto of a faulted or resumed sweep must
   equal the clean run's. *)

open Tytra_exec
open Tytra_dse

(* Run [f] under a virtual clock: sleeps advance time instead of
   blocking, so retry/backoff schedules execute instantly and
   deterministically. Returns (result, final virtual time). *)
let with_virtual_time f =
  let t = ref 0.0 in
  let r =
    Task.with_hooks ~clock:(fun () -> !t) ~sleep:(fun d -> t := !t +. d) f
  in
  (r, !t)

(* ---- Task: deadlines and cancellation ---- *)

let test_task_deadline () =
  let (), _ =
    with_virtual_time @@ fun () ->
    (* no context: check is a no-op, sleep just advances the clock *)
    Task.check ();
    Task.sleep 1.0;
    (* armed deadline: a cooperative sleep notices it mid-delay *)
    (match
       Task.with_context ~deadline_s:0.5 (fun () -> Task.sleep 60.0)
     with
    | () -> Alcotest.fail "expected Timeout"
    | exception Task.Timeout d ->
        Alcotest.(check (float 1e-9)) "allotted" 0.5 d);
    (* context restored on exit: no deadline outside *)
    Task.check ()
  in
  ()

let test_task_abort () =
  let abort = Atomic.make false in
  Task.with_context ~abort (fun () ->
      Task.check ();
      Atomic.set abort true;
      match Task.check () with
      | () -> Alcotest.fail "expected Cancelled"
      | exception Task.Cancelled -> ())

(* ---- Pool.map_result ---- *)

let expect_ok = function
  | Ok v -> v
  | Error te -> Alcotest.failf "unexpected task error: %a" Pool.pp_task_error te

let test_map_result_isolates_failures () =
  List.iter
    (fun jobs ->
      let pool = Pool.create ~jobs () in
      let inputs = List.init 20 Fun.id in
      let rs =
        Pool.map_result pool
          (fun x -> if x mod 5 = 0 then failwith "boom" else x * x)
          inputs
      in
      Alcotest.(check int) "all items reported" 20 (List.length rs);
      List.iteri
        (fun i r ->
          if i mod 5 = 0 then
            match r with
            | Error te ->
                Alcotest.(check int) "one attempt" 1 te.Pool.te_attempts;
                Alcotest.(check bool) "not a timeout" false
                  te.Pool.te_timed_out
            | Ok _ -> Alcotest.failf "item %d should have failed" i
          else Alcotest.(check int) "value in order" (i * i) (expect_ok r))
        rs)
    [ 1; 4 ]

let test_map_result_retry_backoff () =
  let (attempts, rs), elapsed =
    with_virtual_time @@ fun () ->
    let attempts = ref 0 in
    let retry =
      { Pool.max_attempts = 3; base_delay_s = 0.1; max_delay_s = 10.0;
        jitter = 0.0 }
    in
    let rs =
      Pool.map_result (Pool.create ~jobs:1 ()) ~retry
        (fun () ->
          incr attempts;
          if !attempts < 3 then failwith "transient" else 42)
        [ () ]
    in
    (!attempts, rs)
  in
  Alcotest.(check int) "third attempt succeeds" 3 attempts;
  Alcotest.(check int) "ok result" 42 (expect_ok (List.hd rs));
  (* backoff slept 0.1 then 0.2 virtual seconds (jitter 0) *)
  Alcotest.(check (float 1e-6)) "backoff schedule" 0.3 elapsed

let test_map_result_retry_exhausted () =
  let rs, _ =
    with_virtual_time @@ fun () ->
    let retry = { Pool.default_retry with max_attempts = 4; jitter = 0.0 } in
    Pool.map_result (Pool.create ~jobs:1 ()) ~retry
      (fun () -> failwith "always")
      [ () ]
  in
  match rs with
  | [ Error te ] ->
      Alcotest.(check int) "all attempts spent" 4 te.Pool.te_attempts;
      Alcotest.(check bool) "failure kept" true
        (match te.Pool.te_exn with Failure m -> m = "always" | _ -> false)
  | _ -> Alcotest.fail "expected one error"

let test_map_result_deadline () =
  let rs, elapsed =
    with_virtual_time @@ fun () ->
    Pool.map_result (Pool.create ~jobs:1 ()) ~deadline_s:1.0
      (fun x -> if x = 0 then Task.sleep 100.0; x)
      [ 0; 7 ]
  in
  (match rs with
  | [ Error te; ok ] ->
      Alcotest.(check bool) "timed out" true te.Pool.te_timed_out;
      Alcotest.(check int) "other item unaffected" 7 (expect_ok ok)
  | _ -> Alcotest.fail "expected [timeout; ok]");
  Alcotest.(check bool) "stopped at the deadline, not the sleep"
    true (elapsed < 2.0)

(* Deterministic jitter: the same (index, attempt) always sleeps the
   same schedule, so two identical runs take identical virtual time. *)
let test_retry_jitter_deterministic () =
  let run () =
    snd
      (with_virtual_time @@ fun () ->
       let retry = { Pool.default_retry with max_attempts = 3 } in
       ignore
         (Pool.map_result (Pool.create ~jobs:1 ()) ~retry
            (fun () -> failwith "x")
            [ (); () ]))
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "some backoff happened" true (a > 0.0);
  Alcotest.(check (float 1e-12)) "identical schedules" a b

(* ---- Faultgen ---- *)

let test_faultgen_parse () =
  (match Faultgen.parse "seed=42,fail=0.1,fail_at=3:5,timeout_at=7,delay_s=2,crash_at=12" with
  | Error m -> Alcotest.fail m
  | Ok sp ->
      Alcotest.(check int) "seed" 42 sp.Faultgen.fs_seed;
      Alcotest.(check (float 0.0)) "fail" 0.1 sp.Faultgen.fs_fail;
      Alcotest.(check (list int)) "fail_at" [ 3; 5 ] sp.Faultgen.fs_fail_at;
      Alcotest.(check (list int)) "timeout_at" [ 7 ] sp.Faultgen.fs_timeout_at;
      Alcotest.(check (float 0.0)) "delay" 2.0 sp.Faultgen.fs_delay_s;
      Alcotest.(check (option int)) "crash" (Some 12) sp.Faultgen.fs_crash_at;
      (* to_string round-trips *)
      match Faultgen.parse (Faultgen.to_string sp) with
      | Ok sp' ->
          Alcotest.(check bool) "round trip" true (sp = sp')
      | Error m -> Alcotest.fail m);
  List.iter
    (fun bad ->
      match Faultgen.parse bad with
      | Ok _ -> Alcotest.failf "spec %S should not parse" bad
      | Error _ -> ())
    [ "nonsense"; "fail=2.0"; "seed=x"; "unknown_key=1" ]

let test_faultgen_deterministic () =
  let spec = { Faultgen.default with fs_seed = 7; fs_fail = 0.3 } in
  let failing_ids () =
    Faultgen.with_spec (Some spec) @@ fun () ->
    List.filter
      (fun id ->
        match Faultgen.inject ~id ~attempt:1 with
        | () -> false
        | exception Faultgen.Injected_failure _ -> true)
      (List.init 100 Fun.id)
  in
  let a = failing_ids () and b = failing_ids () in
  Alcotest.(check (list int)) "same schedule every run" a b;
  let n = List.length a in
  Alcotest.(check bool)
    (Printf.sprintf "roughly 30%% fail (got %d)" n)
    true
    (n > 10 && n < 60);
  (* retries pass once attempt exceeds fail_attempts *)
  Faultgen.with_spec (Some spec) @@ fun () ->
  List.iter (fun id -> Faultgen.inject ~id ~attempt:2) a

let test_faultgen_disabled_and_counter () =
  Faultgen.with_spec None (fun () ->
      List.iter (fun id -> Faultgen.inject ~id ~attempt:1) (List.init 10 Fun.id));
  Faultgen.reset_counter ();
  Alcotest.(check int) "ids restart" 0 (Faultgen.next_id ());
  Alcotest.(check int) "and advance" 1 (Faultgen.next_id ());
  Faultgen.reset_counter ()

(* ---- Checkpoint files ---- *)

let tmp_path name = Filename.concat (Filename.get_temp_dir_name ()) name

let test_checkpoint_roundtrip () =
  let path = tmp_path "tytra_test_ckpt.bin" in
  let v = [ (1, "one"); (2, "two") ] in
  Checkpoint.save ~path ~kind:"test" ~meta:"m1" v;
  (match Checkpoint.load ~path ~kind:"test" ~meta:"m1" with
  | Ok v' -> Alcotest.(check bool) "payload intact" true (v = v')
  | Error m -> Alcotest.fail m);
  (* wrong kind / wrong meta are load errors, not crashes *)
  (match Checkpoint.load ~path ~kind:"other" ~meta:"m1" with
  | Ok (_ : (int * string) list) -> Alcotest.fail "kind mismatch accepted"
  | Error _ -> ());
  (match Checkpoint.load ~path ~kind:"test" ~meta:"m2" with
  | Ok (_ : (int * string) list) -> Alcotest.fail "meta mismatch accepted"
  | Error _ -> ());
  Sys.remove path

let test_checkpoint_corruption () =
  let path = tmp_path "tytra_test_ckpt_corrupt.bin" in
  Checkpoint.save ~path ~kind:"test" ~meta:"m" (List.init 100 Fun.id);
  (* flip a byte near the end (inside the marshalled payload) *)
  let ic = open_in_bin path in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let b = Bytes.of_string s in
  let i = Bytes.length b - 3 in
  Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0xff));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc;
  (match Checkpoint.load ~path ~kind:"test" ~meta:"m" with
  | Ok (_ : int list) -> Alcotest.fail "corrupt payload accepted"
  | Error m ->
      Alcotest.(check bool) "digest diagnosis" true
        (String.length m > 0));
  (* truncation *)
  let oc = open_out_bin path in
  output_string oc (String.sub s 0 (String.length s / 2));
  close_out oc;
  (match Checkpoint.load ~path ~kind:"test" ~meta:"m" with
  | Ok (_ : int list) -> Alcotest.fail "truncated payload accepted"
  | Error _ -> ());
  (* garbage and absence *)
  let oc = open_out_bin path in
  output_string oc "not a checkpoint at all";
  close_out oc;
  (match Checkpoint.load ~path ~kind:"test" ~meta:"m" with
  | Ok (_ : int list) -> Alcotest.fail "garbage accepted"
  | Error _ -> ());
  Sys.remove path;
  match Checkpoint.load ~path ~kind:"test" ~meta:"m" with
  | Ok (_ : int list) -> Alcotest.fail "missing file accepted"
  | Error _ -> ()

(* ---- DSE: degraded mode, checkpoints, resume ---- *)

let prog () = Tytra_kernels.Sor.program ~im:16 ~jm:16 ~km:16 ()

let test_jobs =
  match Sys.getenv_opt "TYTRA_JOBS" with
  | Some s -> (try max 1 (int_of_string s) with _ -> 4)
  | None -> 4

let cfg ?(prune = true) () =
  { Dse.default_config with max_lanes = 8; jobs = test_jobs; prune }

let variant_names pts =
  List.map (fun p -> Tytra_front.Transform.to_string p.Dse.dp_variant) pts

let same_selection a b =
  let sel pts =
    ( Option.map (fun p -> Tytra_front.Transform.to_string p.Dse.dp_variant)
        (Dse.best pts),
      variant_names (Dse.pareto pts) )
  in
  sel a = sel b

let test_sweep_best_effort_quarantine () =
  let p = prog () in
  let clean = Dse.explore ~config:{ (cfg ~prune:false ()) with jobs = 1 } p in
  (* fail the Pipe point (enumeration index 1) with no retry budget:
     best-effort must quarantine it and keep the rest *)
  Faultgen.reset_counter ();
  let sw =
    Faultgen.with_spec
      (Some { Faultgen.default with fs_fail_at = [ 1 ] })
      (fun () ->
        Dse.explore_sweep
          ~config:{ (cfg ~prune:false ()) with jobs = 1; fail_fast = false }
          p)
  in
  Alcotest.(check int) "one quarantined" 1 (List.length sw.Dse.sw_errors);
  Alcotest.(check int) "stats agree" 1 sw.Dse.sw_stats.Dse.ss_failed;
  let failed = List.hd sw.Dse.sw_errors in
  Alcotest.(check string) "the pipe point failed" "pipe"
    (Tytra_front.Transform.to_string failed.Dse.se_variant);
  Alcotest.(check (list string))
    "everything else evaluated"
    (List.filter (fun v -> v <> "pipe") (variant_names clean))
    (variant_names sw.Dse.sw_points)

let test_sweep_retries_recover () =
  let p = prog () in
  let clean = Dse.explore ~config:(cfg ()) p in
  (* 30% of first attempts fail; retries succeed (fail_attempts = 1) *)
  Faultgen.reset_counter ();
  let sw =
    Faultgen.with_spec
      (Some { Faultgen.default with fs_seed = 11; fs_fail = 0.3 })
      (fun () ->
        Dse.explore_sweep ~config:{ (cfg ()) with max_attempts = 3 } p)
  in
  Alcotest.(check int) "nothing quarantined" 0
    (List.length sw.Dse.sw_errors);
  Alcotest.(check bool) "selection equals clean run" true
    (same_selection clean sw.Dse.sw_points)

let test_sweep_fail_fast_raises () =
  Faultgen.reset_counter ();
  match
    Faultgen.with_spec
      (Some { Faultgen.default with fs_fail_at = [ 0 ] })
      (fun () -> Dse.explore ~config:{ (cfg ()) with jobs = 1 } (prog ()))
  with
  | _ -> Alcotest.fail "expected the injected failure to propagate"
  | exception Faultgen.Injected_failure 0 -> ()

let test_sweep_checkpoint_and_resume () =
  let p = prog () in
  let path = tmp_path "tytra_test_dse_ckpt.bin" in
  let config = { (cfg ~prune:false ()) with checkpoint = Some path;
                 checkpoint_every = 2 } in
  let clean = Dse.explore_sweep ~config p in
  (* the completed sweep left a complete, loadable checkpoint *)
  let restored =
    match Dse.load_checkpoint ~path config p with
    | Ok pts -> pts
    | Error m -> Alcotest.fail m
  in
  Alcotest.(check int) "checkpoint holds the full sweep"
    (List.length clean.Dse.sw_points)
    (List.length restored);
  (* resuming from a *prefix* (as after a mid-sweep crash) re-evaluates
     only the tail and reaches the same selection *)
  let prefix = List.filteri (fun i _ -> i < 2) clean.Dse.sw_points in
  let resumed = Dse.explore_sweep ~config:(cfg ~prune:false ()) ~restore:prefix p in
  Alcotest.(check int) "prefix restored" 2 resumed.Dse.sw_stats.Dse.ss_restored;
  Alcotest.(check int) "tail evaluated"
    (List.length clean.Dse.sw_points - 2)
    resumed.Dse.sw_stats.Dse.ss_evaluated;
  Alcotest.(check (list string)) "same points, same order"
    (variant_names clean.Dse.sw_points)
    (variant_names resumed.Dse.sw_points);
  Alcotest.(check bool) "same selection" true
    (same_selection clean.Dse.sw_points resumed.Dse.sw_points);
  (* resuming a *pruned* sweep from the prefix also preserves selection *)
  let clean_pruned = Dse.explore_sweep ~config:(cfg ()) p in
  let prefix = List.filteri (fun i _ -> i < 2) clean_pruned.Dse.sw_points in
  let resumed_pruned = Dse.explore_sweep ~config:(cfg ()) ~restore:prefix p in
  Alcotest.(check bool) "pruned resume selection" true
    (same_selection clean_pruned.Dse.sw_points resumed_pruned.Dse.sw_points);
  (* a stale checkpoint (different sweep bounds) is refused *)
  (match Dse.load_checkpoint ~path { config with max_lanes = 4 } p with
  | Ok _ -> Alcotest.fail "stale checkpoint accepted"
  | Error _ -> ());
  Sys.remove path

let test_sweep_stats_accounting () =
  let p = prog () in
  let sw = Dse.explore_sweep ~config:(cfg ()) p in
  let s = sw.Dse.sw_stats in
  Alcotest.(check int) "space fully accounted" s.Dse.ss_space
    (s.Dse.ss_evaluated + s.Dse.ss_restored + s.Dse.ss_failed
    + s.Dse.ss_pruned_resource + s.Dse.ss_pruned_incumbent);
  (* the legacy rendering is unchanged for clean sweeps *)
  let txt = Format.asprintf "%a" Dse.pp_sweep_stats s in
  Alcotest.(check bool) "no restored/failed noise" false
    (String.length txt >= 8
    && (String.ends_with ~suffix:"restored" txt
       || String.ends_with ~suffix:"failed" txt))

let suite =
  [
    Alcotest.test_case "task deadline" `Quick test_task_deadline;
    Alcotest.test_case "task abort" `Quick test_task_abort;
    Alcotest.test_case "map_result isolates failures" `Quick
      test_map_result_isolates_failures;
    Alcotest.test_case "map_result retry + backoff" `Quick
      test_map_result_retry_backoff;
    Alcotest.test_case "map_result retry exhausted" `Quick
      test_map_result_retry_exhausted;
    Alcotest.test_case "map_result deadline" `Quick test_map_result_deadline;
    Alcotest.test_case "retry jitter deterministic" `Quick
      test_retry_jitter_deterministic;
    Alcotest.test_case "faultgen spec parse" `Quick test_faultgen_parse;
    Alcotest.test_case "faultgen deterministic" `Quick
      test_faultgen_deterministic;
    Alcotest.test_case "faultgen disabled + counter" `Quick
      test_faultgen_disabled_and_counter;
    Alcotest.test_case "checkpoint roundtrip" `Quick test_checkpoint_roundtrip;
    Alcotest.test_case "checkpoint corruption" `Quick
      test_checkpoint_corruption;
    Alcotest.test_case "sweep best-effort quarantine" `Quick
      test_sweep_best_effort_quarantine;
    Alcotest.test_case "sweep retries recover" `Quick
      test_sweep_retries_recover;
    Alcotest.test_case "sweep fail-fast raises" `Quick
      test_sweep_fail_fast_raises;
    Alcotest.test_case "sweep checkpoint + resume" `Quick
      test_sweep_checkpoint_and_resume;
    Alcotest.test_case "sweep stats accounting" `Quick
      test_sweep_stats_accounting;
  ]
