#!/usr/bin/env python3
"""Perf-regression guard: compare a fresh `bench e5 e8 e10 e12 --json`
export against the committed baseline (BENCH_dse.json).

Two modes, selected by what the baseline records:

- EXACT mode (baseline has a "perf_profile" section): every counter in
  the versioned perf profile must match the current run EXACTLY —
  missing, added, or changed counters all fail. Work counters are
  deterministic at a fixed --jobs level (waves are synchronous and
  Pool.map is order-preserving), so any drift means the exploration
  itself changed, not the machine. Counters whose value is genuinely
  racy at jobs > 1 carry named waivers (see WAIVERS); --waive PATTERN
  adds more. Wall-clock ratio gating is OFF by default in this mode
  (pass --ratio to re-enable it); the span *name set* is still checked,
  so a phase appearing or disappearing is caught without any timing
  sensitivity.

- LEGACY mode (no perf_profile in the baseline): the original checks —
  a fixed list of exact work counters, exact E8 pruning gauges, and
  span totals ratio-gated at 3x (CI machines are noisy, so only flag a
  span whose total grew past the gate over a baseline total worth
  measuring).

Whenever ratio gating is active (legacy mode, or --ratio in EXACT
mode), placement spans (sim.techmap.place*) are held to a tighter <=2x
gate: placement is the dominant E8 cost and its work counters are
exact, so its wall time tracks the machine far more reproducibly than
the sweep-shaped spans around it.

Usage: perf_guard.py BASELINE.json CURRENT.json [--ratio R] [--waive PAT]
Exit code 0 when clean, 1 with a report on stderr otherwise.
"""

import fnmatch
import json
import re
import sys

# Built-in waivers for EXACT mode: counters whose value is not a pure
# function of the workload at jobs > 1, with the reason on record.
WAIVERS = {
    "cost.stage_cache.*": (
        "hit/miss split races at jobs > 1: Cache.find_or_add computes "
        "outside the lock, so concurrent misses on one key are counted "
        "differently run to run"
    ),
    "dse.cache.*": "same find_or_add race on the point-evaluation cache",
    "dse.template_cache.*": "same find_or_add race on the template cache",
    "exec.task.*": (
        "retry/deadline accounting depends on wall-clock timing, not "
        "on the workload"
    ),
    "engine.parse_cache.*": (
        "same find_or_add race on the engine's parse+validate cache "
        "under E10's concurrent clients"
    ),
    "engine.retries": (
        "only incremented on transient-class failures, which depend on "
        "wall-clock deadlines, not on the workload"
    ),
    "engine.response_cache.*": (
        "hit/miss split races under E10's concurrent clients: two "
        "simultaneous misses on one request key both compute and both "
        "count a miss"
    ),
}

# Counters that must match the baseline exactly in LEGACY mode. (In
# EXACT mode the whole registry is gated, these included.)
EXACT_COUNTERS = [
    "dse.points_evaluated",
    "dse.points_pruned",
    "dse.points_derived",
    "cost.evaluations",
    "sim.techmap.runs",
    "sim.cyclesim.runs",
    "sim.techmap.anneal.moves",
    "sim.techmap.anneal.delta_evals",
    "sim.techmap.anneal.early_exit",
    "engine.batch.requests",
    "engine.batch.dispatches",
    "engine.batch.dedup_hits",
]

# Integer-valued E8 gauges recording the pruning outcome per kernel.
EXACT_GAUGE_RE = re.compile(
    r"^bench\.e8\.[a-z]+\.(space|evals_exhaustive|evals_pruned"
    r"|pruned_resource|pruned_incumbent)$"
)

# Equivalence flags that must read 1.0 in the current run.
IDENTITY_GAUGES = {
    "bench.e8.fastpath.selections_identical": (
        "fast path and --no-fast-ir must select identically"
    ),
    "bench.e8.fastpath.placements_identical": (
        "incremental and reference placement must be bit-identical"
    ),
    "bench.e8.placemode.quality_ok": (
        "parallel placement must stay within +2% wirelength of reference"
    ),
    "bench.e8.placemode.selections_identical": (
        "best/pareto selections must agree across all three place modes"
    ),
    "bench.e12.batch_identical": (
        "submit_batch responses must be byte-identical to sequential submit"
    ),
}

# E12 gauges gated only when the HTTP shard sweep actually ran
# (bench.e12.http_measured == 1.0; it is 0 when tybec.exe is not next
# to the bench binary or a server config failed to come up).
E12_HTTP_IDENTITY = {
    "bench.e12.shard_identical": (
        "responses must be byte-identical across single-process, "
        "2-shard and 4-shard fronts, batched and unbatched"
    ),
}

# Throughput floor for the batched 4-shard front vs the single-process
# unbatched front, as a fraction of the machine's parallelism: the 3x
# target of the E12 acceptance line is demanded in full on >=9-core
# machines and scaled down linearly below that (the bench drives 8
# closed-loop clients, and on a 1-core container sharding cannot win
# at all — there the floor only catches a collapsed or deadlocked
# front, measured at 0.5-0.7x with margin kept for scheduler noise).
E12_THROUGHPUT_TARGET = 3.0
E12_THROUGHPUT_PER_CORE = 0.35

# Placement spans are gated at <=2x even when the general gate is
# looser: their work counters are exact, so wall time per unit of work
# is stable.
PLACEMENT_SPAN_PAT = "sim.techmap.place*"
PLACEMENT_RATIO = 2.0

# Ignore spans whose baseline total is below this when ratio-gating:
# sub-50ms totals are dominated by scheduler noise.
MIN_GATED_NS = 50_000_000


def load(path):
    with open(path) as f:
        return json.load(f)


def waived(name, waivers):
    return any(fnmatch.fnmatchcase(name, pat) for pat in waivers)


def check_spans(base, cur, ratio, failures):
    """Span name-set check, plus ratio gating when a gate is given."""
    base_spans = {s["name"]: s for s in base.get("spans", [])}
    cur_spans = {s["name"]: s for s in cur.get("spans", [])}
    missing = sorted(set(base_spans) - set(cur_spans))
    added = sorted(set(cur_spans) - set(base_spans))
    if missing:
        failures.append(f"spans missing vs baseline: {', '.join(missing)}")
    if added:
        failures.append(f"spans not in baseline: {', '.join(added)}")
    if ratio is not None:
        for name, bs in sorted(base_spans.items()):
            cs = cur_spans.get(name)
            if cs is None or bs["total_ns"] < MIN_GATED_NS:
                continue
            gate = ratio
            if fnmatch.fnmatchcase(name, PLACEMENT_SPAN_PAT):
                gate = min(ratio, PLACEMENT_RATIO)
            r = cs["total_ns"] / bs["total_ns"]
            if r > gate:
                failures.append(
                    f"span {name}: total {cs['total_ns']/1e9:.3f}s is "
                    f"{r:.2f}x the baseline {bs['total_ns']/1e9:.3f}s "
                    f"(gate {gate:.1f}x)"
                )
    return len(base_spans)


def check_gauges(base, cur, failures):
    base_gauges = base.get("metrics", {}).get("gauges", {})
    cur_gauges = cur.get("metrics", {}).get("gauges", {})
    n = 0
    for key in sorted(set(base_gauges) | set(cur_gauges)):
        if not EXACT_GAUGE_RE.match(key):
            continue
        n += 1
        b, c = base_gauges.get(key), cur_gauges.get(key)
        if b != c:
            failures.append(f"gauge {key}: baseline {b}, current {c}")
    for key, why in IDENTITY_GAUGES.items():
        if cur_gauges.get(key) != 1.0:
            failures.append(
                f"gauge {key}: expected 1.0 ({why}), "
                f"got {cur_gauges.get(key)}"
            )
    n += check_e12_serving(cur_gauges, failures)
    return n


def check_e12_serving(cur_gauges, failures):
    """E12 HTTP gates: identity across fronts + the throughput floor,
    enforced only when the shard sweep ran on this machine."""
    if cur_gauges.get("bench.e12.http_measured") != 1.0:
        return 0
    n = 0
    for key, why in E12_HTTP_IDENTITY.items():
        n += 1
        if cur_gauges.get(key) != 1.0:
            failures.append(
                f"gauge {key}: expected 1.0 ({why}), "
                f"got {cur_gauges.get(key)}"
            )
    single = cur_gauges.get("bench.e12.shards1.unbatched.req_s")
    sharded = cur_gauges.get("bench.e12.shards4.batched.req_s")
    cores = cur_gauges.get("bench.e12.cores")
    if not single or not sharded or not cores:
        failures.append(
            "bench.e12.http_measured is 1.0 but the shards1.unbatched/"
            "shards4.batched req_s or cores gauges are missing"
        )
        return n
    floor = min(E12_THROUGHPUT_TARGET, E12_THROUGHPUT_PER_CORE * cores)
    ratio = sharded / single
    n += 1
    if ratio < floor:
        failures.append(
            f"E12 throughput: batched 4-shard front sustains {sharded:.0f} "
            f"req/s vs {single:.0f} req/s single-process ({ratio:.2f}x), "
            f"below the floor {floor:.2f}x for {cores:.0f} cores"
        )
    return n


def check_profile_exact(base, cur, waivers, failures):
    """EXACT mode: the whole counter registry, waivers aside."""
    bp, cp = base["perf_profile"], cur.get("perf_profile")
    if cp is None:
        failures.append(
            "current run has no perf_profile section (baseline does)"
        )
        return 0, 0
    if bp.get("version") != cp.get("version"):
        failures.append(
            f"perf_profile version: baseline {bp.get('version')}, "
            f"current {cp.get('version')}"
        )
    bc, cc = bp.get("counters", {}), cp.get("counters", {})
    n_checked = n_waived = 0
    for key in sorted(set(bc) | set(cc)):
        if waived(key, waivers):
            n_waived += 1
            continue
        n_checked += 1
        b, c = bc.get(key), cc.get(key)
        if b is None:
            failures.append(
                f"counter {key}: {c} not in baseline (new unaccounted "
                f"work; refresh BENCH_dse.json or add a waiver)"
            )
        elif c is None:
            failures.append(f"counter {key}: baseline {b}, missing now")
        elif b != c:
            failures.append(f"counter {key}: baseline {b}, current {c}")
    return n_checked, n_waived


def check_counters_legacy(base, cur, failures):
    base_counters = base.get("metrics", {}).get("counters", {})
    cur_counters = cur.get("metrics", {}).get("counters", {})
    for key in EXACT_COUNTERS:
        b, c = base_counters.get(key), cur_counters.get(key)
        if b != c:
            failures.append(f"counter {key}: baseline {b}, current {c}")
    return len(EXACT_COUNTERS)


def main():
    paths = []
    ratio = None
    waivers = dict(WAIVERS)
    argv = sys.argv[1:]
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--ratio":
            ratio = float(argv[i + 1])
            i += 2
        elif a == "--waive":
            waivers[argv[i + 1]] = "waived on the command line"
            i += 2
        elif a.startswith("--"):
            sys.exit(f"unknown option {a}\n\n{__doc__}")
        else:
            paths.append(a)
            i += 1
    if len(paths) != 2:
        sys.exit(__doc__)
    base, cur = load(paths[0]), load(paths[1])
    failures = []

    exact_mode = "perf_profile" in base
    if exact_mode:
        n_spans = check_spans(base, cur, ratio, failures)
        n_checked, n_waived = check_profile_exact(base, cur, waivers, failures)
    else:
        n_spans = check_spans(base, cur, 3.0 if ratio is None else ratio,
                              failures)
        n_checked = check_counters_legacy(base, cur, failures)
        n_waived = 0
    n_gauges = check_gauges(base, cur, failures)

    if failures:
        print("perf guard FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    if exact_mode:
        gating = "off" if ratio is None else f"{ratio:.1f}x"
        print(
            f"perf guard OK (exact mode): {n_checked} counters exact "
            f"({n_waived} waived), {n_gauges} E8 gauges exact, "
            f"{n_spans} span names pinned, ratio gating {gating}, "
            f"equivalence flags green"
        )
    else:
        print(
            f"perf guard OK (legacy mode): {n_spans} spans ratio-gated "
            f"(placement at <=2x), {n_checked} work counters exact, "
            f"{n_gauges} E8 gauges exact, equivalence flags green"
        )


if __name__ == "__main__":
    main()
