#!/usr/bin/env python3
"""Perf-regression guard: compare a fresh `bench e5 e8 --json` export
against the committed baseline (BENCH_dse.json).

Two kinds of checks, deliberately different in strictness:

- structure and work counters must match EXACTLY: the set of span names,
  and the evaluation/pruning counters (points evaluated, points pruned,
  cost evaluations, per-kernel E8 pruning gauges). These are
  deterministic at a fixed --jobs level (waves are synchronous and
  Pool.map is order-preserving), so any difference means the exploration
  itself changed, not the machine.

- wall-clock span totals are RATIO-gated (default 3x): CI machines are
  noisy, so only flag a span whose total time grew by more than the
  gate over a baseline total worth measuring.

Usage: perf_guard.py BASELINE.json CURRENT.json [--ratio 3.0]
Exit code 0 when clean, 1 with a report on stderr otherwise.
"""

import json
import re
import sys

# Counters that must match the baseline exactly (deterministic at fixed
# --jobs): the quantity of exploration work, not its speed.
EXACT_COUNTERS = [
    "dse.points_evaluated",
    "dse.points_pruned",
    "dse.points_derived",
    "cost.evaluations",
    "sim.techmap.runs",
    "sim.cyclesim.runs",
]

# Integer-valued E8 gauges recording the pruning outcome per kernel.
EXACT_GAUGE_RE = re.compile(
    r"^bench\.e8\.[a-z]+\.(space|evals_exhaustive|evals_pruned"
    r"|pruned_resource|pruned_incumbent)$"
)

# Fast-path equivalence flags: 1.0 means fast and --no-fast-ir agreed.
IDENTITY_GAUGES = [
    "bench.e8.fastpath.selections_identical",
    "bench.e8.fastpath.placements_identical",
]

# Ignore spans whose baseline total is below this when ratio-gating:
# sub-50ms totals are dominated by scheduler noise.
MIN_GATED_NS = 50_000_000


def load(path):
    with open(path) as f:
        return json.load(f)


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    ratio = 3.0
    for i, a in enumerate(sys.argv):
        if a == "--ratio":
            ratio = float(sys.argv[i + 1])
    if len(args) != 2:
        sys.exit(__doc__)
    base, cur = load(args[0]), load(args[1])
    failures = []

    base_spans = {s["name"]: s for s in base.get("spans", [])}
    cur_spans = {s["name"]: s for s in cur.get("spans", [])}

    missing = sorted(set(base_spans) - set(cur_spans))
    added = sorted(set(cur_spans) - set(base_spans))
    if missing:
        failures.append(f"spans missing vs baseline: {', '.join(missing)}")
    if added:
        failures.append(f"spans not in baseline: {', '.join(added)}")

    for name, bs in sorted(base_spans.items()):
        cs = cur_spans.get(name)
        if cs is None or bs["total_ns"] < MIN_GATED_NS:
            continue
        r = cs["total_ns"] / bs["total_ns"]
        if r > ratio:
            failures.append(
                f"span {name}: total {cs['total_ns']/1e9:.3f}s is "
                f"{r:.2f}x the baseline {bs['total_ns']/1e9:.3f}s "
                f"(gate {ratio:.1f}x)"
            )

    base_counters = base.get("metrics", {}).get("counters", {})
    cur_counters = cur.get("metrics", {}).get("counters", {})
    for key in EXACT_COUNTERS:
        b, c = base_counters.get(key), cur_counters.get(key)
        if b != c:
            failures.append(f"counter {key}: baseline {b}, current {c}")

    base_gauges = base.get("metrics", {}).get("gauges", {})
    cur_gauges = cur.get("metrics", {}).get("gauges", {})
    for key in sorted(set(base_gauges) | set(cur_gauges)):
        if not EXACT_GAUGE_RE.match(key):
            continue
        b, c = base_gauges.get(key), cur_gauges.get(key)
        if b != c:
            failures.append(f"gauge {key}: baseline {b}, current {c}")

    for key in IDENTITY_GAUGES:
        if cur_gauges.get(key) != 1.0:
            failures.append(
                f"gauge {key}: expected 1.0 (fast path and --no-fast-ir "
                f"must agree), got {cur_gauges.get(key)}"
            )

    if failures:
        print("perf guard FAILED:", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        sys.exit(1)
    n_spans = len(base_spans)
    n_exact = len(EXACT_COUNTERS) + sum(
        1 for k in base_gauges if EXACT_GAUGE_RE.match(k)
    )
    print(
        f"perf guard OK: {n_spans} spans ratio-gated at {ratio:.1f}x, "
        f"{n_exact} work counters exact, fast path equivalent"
    )


if __name__ == "__main__":
    main()
