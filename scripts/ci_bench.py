#!/usr/bin/env python3
"""Instruction-count benchmarking (ROADMAP: "adopt instruction-count-
based benchmarking a la nim-lang/ci_bench").

Runs one bench (E9: parse+validate throughput) under valgrind's
cachegrind with FIXED cache parameters, so the reported instruction
and cache-miss counts are a deterministic function of the code, not of
the host machine. Compares against the committed CSV baseline
(scripts/ci_bench_baseline.csv) and reports the per-metric delta.

This step is NON-BLOCKING by design: it always exits 0 unless invoked
incorrectly. Wall-clock-free counts are the long-term replacement for
ratio-gated span timings, but the baseline needs to soak across a few
CI runs before it can gate; until then the delta report is
informational. Drift beyond --warn-pct (default 2%) is flagged loudly
in the output.

Degrades gracefully:
  - valgrind not installed      -> prints a note, exit 0
  - bench binary not built      -> prints a note, exit 0
  - no baseline CSV yet         -> writes one, reports "baseline created"

Usage:
  ci_bench.py [--bench PATH] [--baseline PATH] [--update] [--warn-pct P]
"""

import csv
import os
import re
import shutil
import subprocess
import sys
import tempfile

# Fixed cache geometry: i7-ish 32K/32K/8M, pinned so LL/D1 miss counts
# never depend on the runner's real cache hierarchy.
CACHE_ARGS = [
    "--I1=32768,8,64",
    "--D1=32768,8,64",
    "--LL=8388608,16,64",
]

BENCH_ARGS = ["e9"]

# Metrics harvested from cachegrind's exit summary, in report order.
METRICS = [
    ("I_refs", r"I\s+refs:\s+([\d,]+)"),
    ("D_refs", r"D\s+refs:\s+([\d,]+)"),
    ("D1_misses", r"D1\s+misses:\s+([\d,]+)"),
    ("LL_misses", r"LL\s+misses:\s+([\d,]+)"),
]


def note(msg):
    print(f"ci_bench: {msg}")


def parse_counts(text):
    out = {}
    for name, pat in METRICS:
        m = re.search(pat, text)
        if m:
            out[name] = int(m.group(1).replace(",", ""))
    return out


def load_baseline(path):
    base = {}
    with open(path) as f:
        for row in csv.DictReader(f):
            base[row["metric"]] = int(row["value"])
    return base


def write_baseline(path, counts):
    with open(path, "w", newline="") as f:
        w = csv.writer(f)
        w.writerow(["bench", "metric", "value"])
        for name, _ in METRICS:
            if name in counts:
                w.writerow(["e9", name, counts[name]])


def main():
    bench = "_build/default/bench/main.exe"
    baseline = os.path.join(os.path.dirname(__file__), "ci_bench_baseline.csv")
    update = False
    warn_pct = 2.0
    argv = sys.argv[1:]
    i = 0
    while i < len(argv):
        a = argv[i]
        if a == "--bench":
            bench = argv[i + 1]
            i += 2
        elif a == "--baseline":
            baseline = argv[i + 1]
            i += 2
        elif a == "--update":
            update = True
            i += 1
        elif a == "--warn-pct":
            warn_pct = float(argv[i + 1])
            i += 2
        else:
            sys.exit(f"unknown option {a}\n\n{__doc__}")

    if shutil.which("valgrind") is None:
        note("valgrind not found on PATH; skipping (non-blocking)")
        return
    if not os.path.exists(bench):
        note(f"bench binary {bench} not built; skipping (non-blocking)")
        return

    with tempfile.NamedTemporaryFile(prefix="cachegrind.", suffix=".out") as tf:
        cmd = (
            ["valgrind", "--tool=cachegrind"]
            + CACHE_ARGS
            + [f"--cachegrind-out-file={tf.name}", bench]
            + BENCH_ARGS
        )
        note("running: " + " ".join(cmd))
        proc = subprocess.run(
            cmd, capture_output=True, text=True, timeout=3600
        )
    if proc.returncode != 0:
        note(f"bench under cachegrind exited {proc.returncode}; skipping")
        sys.stdout.write(proc.stderr[-2000:])
        return

    counts = parse_counts(proc.stderr)
    if "I_refs" not in counts:
        note("could not parse cachegrind summary; skipping")
        sys.stdout.write(proc.stderr[-2000:])
        return

    note(
        "E9 under cachegrind (fixed 32K/32K/8M caches): "
        + ", ".join(f"{k}={counts[k]:,}" for k, _ in METRICS if k in counts)
    )

    if update or not os.path.exists(baseline):
        write_baseline(baseline, counts)
        note(
            f"baseline {'updated' if update else 'created'} at {baseline} "
            "(commit it to pin instruction counts)"
        )
        return

    base = load_baseline(baseline)
    drifted = []
    print(f"{'metric':<12} {'baseline':>16} {'current':>16} {'delta':>9}")
    for name, _ in METRICS:
        if name not in counts or name not in base:
            continue
        b, c = base[name], counts[name]
        pct = 100.0 * (c - b) / b if b else 0.0
        print(f"{name:<12} {b:>16,} {c:>16,} {pct:>+8.2f}%")
        if abs(pct) > warn_pct:
            drifted.append((name, pct))
    if drifted:
        note(
            "DRIFT over "
            + f"{warn_pct:.1f}%: "
            + ", ".join(f"{n} {p:+.2f}%" for n, p in drifted)
            + " — investigate or refresh with --update (non-blocking)"
        )
    else:
        note(f"all metrics within {warn_pct:.1f}% of baseline")


if __name__ == "__main__":
    main()
