#!/usr/bin/env python3
"""Wire-level chaos harness for `tybec serve` (DESIGN.md §16).

Throws adversarial traffic at a live daemon and asserts the one
invariant the self-healing stack promises: EVERY request ends in a
typed protocol response, a typed HTTP error, or a documented abort
(connection closed by a deliberately killed shard) — never a hang and
never an untyped body.

Phases (wire phases run against --addr; shard phases need --admin,
the supervisor's aggregated endpoint of a `--shards N` front):

  ok          well-formed requests answer typed 200s
  malformed   garbage JSON / wrong version / unknown op → typed 400
  oversize    Content-Length over the body cap → typed 413, immediately
  truncated   Content-Length promises more bytes than ever arrive
              → typed 408 when the server's read deadline fires
  slowloris   headers dribbled byte-by-byte → typed 408, concurrently
  partial     valid bytes in tiny delayed writes → typed 200
  deadline    deadline_ms=1 on a real evaluation → typed
              deadline_exceeded / timeout, HTTP 504
  sigkill     SIGKILL a shard mid-streamed-explore (pid from the
              supervisor's /metrics.json): frames received up to the
              kill parse as JSON, the socket closes instead of hanging,
              and the supervisor restarts the shard
  journal     after the restart, the warmed request is served from the
              journaled response cache (engine.response_cache.hits > 0
              on the restarted shard with zero misses — needs the
              daemon running with --cache-journal)

Exit 0 iff no hangs, no untyped answers and every phase assertion
holds. Stdlib only; seedable (--seed) for the randomized bodies.

Usage:
  chaos_serve.py --addr 127.0.0.1:9470 [--admin 127.0.0.1:9471]
                 [--seed 42] [--skip slowloris,truncated] [--verbose]
"""

import argparse
import json
import random
import socket
import sys
import threading
import time

# The server reads a request under a 10s deadline; anything that takes
# longer than deadline + margin is a hang.
SERVER_READ_DEADLINE_S = 10.0
HANG_TIMEOUT_S = SERVER_READ_DEADLINE_S + 8.0

ACCT = {
    "sent": 0,
    "typed_ok": 0,
    "typed_error": 0,
    "aborted_by_crash": 0,
    "untyped": 0,
    "hung": 0,
}
ACCT_LOCK = threading.Lock()
FAILURES = []


def acct(kind):
    with ACCT_LOCK:
        ACCT[kind] += 1


def fail(msg):
    with ACCT_LOCK:
        FAILURES.append(msg)
    print(f"chaos: FAIL: {msg}", file=sys.stderr)


def parse_addr(addr):
    host, _, port = addr.rpartition(":")
    return (host or "127.0.0.1", int(port))


def recv_all(sock):
    data = b""
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            return data
        data += chunk


def split_response(raw):
    """-> (status, body) or None when raw is not an HTTP response."""
    head, sep, body = raw.partition(b"\r\n\r\n")
    if not sep:
        return None
    parts = head.split(b" ", 2)
    if len(parts) < 2 or not parts[1].isdigit():
        return None
    return int(parts[1]), body


def is_typed(body):
    """A typed protocol body: one JSON object with a v/status envelope."""
    try:
        obj = json.loads(body.decode("utf-8", errors="strict"))
    except (ValueError, UnicodeDecodeError):
        return None
    if isinstance(obj, dict) and obj.get("v") == 1 and "status" in obj:
        return obj
    return None


def classify(raw, *, crash_ok=False, what=""):
    """Account one finished exchange; returns the typed object or None."""
    if raw == b"":
        if crash_ok:
            acct("aborted_by_crash")
            return None
        acct("untyped")
        fail(f"{what}: connection closed with no response at all")
        return None
    parsed = split_response(raw)
    if parsed is None:
        if crash_ok:
            # a shard killed mid-write may leave a torn head
            acct("aborted_by_crash")
            return None
        acct("untyped")
        fail(f"{what}: unparseable HTTP response {raw[:80]!r}")
        return None
    status, body = parsed
    obj = is_typed(body)
    if obj is None:
        if crash_ok:
            acct("aborted_by_crash")
            return None
        acct("untyped")
        fail(f"{what}: HTTP {status} with untyped body {body[:120]!r}")
        return None
    acct("typed_ok" if obj.get("status") == "ok" else "typed_error")
    return obj


def exchange(addr, payload, *, crash_ok=False, what="", chunked=None,
             account=True):
    """Send raw bytes, read to EOF under the hang timeout, classify.

    With account=False nothing is recorded: the mode for polling probes
    during a recovery window, where a refused/failed exchange is an
    expected transient, not a verdict."""
    if account:
        acct("sent")
    try:
        sock = socket.create_connection(parse_addr(addr), timeout=HANG_TIMEOUT_S)
    except OSError as exc:
        if account:
            acct("untyped")
            fail(f"{what}: connect failed: {exc}")
        return None
    try:
        sock.settimeout(HANG_TIMEOUT_S)
        if chunked is None:
            sock.sendall(payload)
        else:
            size, delay = chunked
            for i in range(0, len(payload), size):
                sock.sendall(payload[i : i + size])
                time.sleep(delay)
        try:
            sock.shutdown(socket.SHUT_WR)
        except OSError:
            pass
        raw = recv_all(sock)
    except socket.timeout:
        if account:
            acct("hung")
            fail(f"{what}: no response within {HANG_TIMEOUT_S:.0f}s (hang)")
        return None
    except OSError as exc:
        if account:
            if crash_ok:
                acct("aborted_by_crash")
            else:
                acct("untyped")
                fail(f"{what}: socket error {exc}")
        return None
    finally:
        sock.close()
    if not account:
        parsed = split_response(raw)
        return is_typed(parsed[1]) if parsed else None
    return classify(raw, crash_ok=crash_ok, what=what)


def http(body, path="/v1/submit", meth="POST", content_length=None):
    length = len(body) if content_length is None else content_length
    head = f"{meth} {path} HTTP/1.0\r\nContent-Length: {length}\r\n\r\n"
    return head.encode() + body


COST_INLINE = (
    "%m = memobj global ui18 size 8\\n"
    "define void @main (ui18 %p) seq { }\\n"
)


def cost_request(nki=1, deadline_ms=None):
    req = {
        "v": 1,
        "op": "cost",
        "source": {"inline": COST_INLINE.replace("\\n", "\n")},
        "nki": nki,
    }
    if deadline_ms is not None:
        req["deadline_ms"] = deadline_ms
    return json.dumps(req).encode()


def explore_request(stream=True, size=12, max_lanes=8):
    return json.dumps(
        {
            "v": 1,
            "op": "explore",
            "kernel": "hotspot",
            "size": size,
            "max_lanes": max_lanes,
            "nki": 1,
            "jobs": 1,
            "stream": stream,
        }
    ).encode()


# ------------------------------------------------------------------ #
# Wire phases                                                         #
# ------------------------------------------------------------------ #


def phase_ok(addr, verbose):
    for i in range(4):
        obj = exchange(addr, http(cost_request(nki=1 + i)), what="ok")
        if obj is not None and obj.get("status") != "ok":
            fail(f"ok: expected a typed ok, got {obj}")
    if verbose:
        print("chaos: phase ok done")


def phase_malformed(addr, rng, verbose):
    bodies = [
        b"",
        b"hunter2",
        b'{"v":1,',
        b"null",
        b'{"v":9,"op":"check"}',
        b'{"v":1,"op":"transmogrify"}',
        b'{"v":1,"op":"cost","source":{}}',
        bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 200))),
    ]
    for body in bodies:
        obj = exchange(addr, http(body), what=f"malformed {body[:24]!r}")
        if obj is not None and obj.get("status") != "error":
            fail(f"malformed: {body[:40]!r} was accepted: {obj}")
    # a malformed request LINE never reaches the protocol layer; the
    # wire responder must still answer it typed
    obj = exchange(addr, b"garbage\r\n\r\n", what="malformed request line")
    if obj is not None and obj.get("status") != "error":
        fail("malformed request line was accepted")
    if verbose:
        print("chaos: phase malformed done")


def phase_oversize(addr, verbose):
    t0 = time.monotonic()
    obj = exchange(
        addr,
        http(b"xx", content_length=64 * 1024 * 1024),
        what="oversize",
    )
    took = time.monotonic() - t0
    if obj is not None and obj.get("error") != "request_too_large":
        fail(f"oversize: expected request_too_large, got {obj}")
    if took > 5.0:
        fail(f"oversize: answer took {took:.1f}s — body was read, not refused")
    if verbose:
        print("chaos: phase oversize done")


def phase_truncated(addr):
    # promises 512 bytes, delivers 10, then stays silent (no shutdown —
    # shutdown would look like a clean EOF, not a stall)
    acct("sent")
    what = "truncated"
    try:
        sock = socket.create_connection(parse_addr(addr), timeout=HANG_TIMEOUT_S)
        sock.settimeout(HANG_TIMEOUT_S)
        sock.sendall(b"POST /v1/submit HTTP/1.0\r\nContent-Length: 512\r\n\r\n" + b"x" * 10)
        raw = recv_all(sock)
        sock.close()
    except socket.timeout:
        acct("hung")
        fail(f"{what}: no response within {HANG_TIMEOUT_S:.0f}s (hang)")
        return
    except OSError as exc:
        acct("untyped")
        fail(f"{what}: socket error {exc}")
        return
    obj = classify(raw, what=what)
    if obj is not None and obj.get("status") != "error":
        fail(f"{what}: expected a typed error, got {obj}")


def phase_slowloris(addr):
    acct("sent")
    what = "slowloris"
    head = b"POST /v1/submit HTTP/1.0\r\nContent-Length: 5\r\n\r\n"
    try:
        sock = socket.create_connection(parse_addr(addr), timeout=HANG_TIMEOUT_S)
        sock.settimeout(HANG_TIMEOUT_S)
        deadline = time.monotonic() + SERVER_READ_DEADLINE_S + 3.0
        raw = b""
        for byte in head:
            sock.sendall(bytes([byte]))
            time.sleep(0.35)
            if time.monotonic() > deadline:
                break
            # the server may answer mid-dribble; poll without blocking
            sock.setblocking(False)
            try:
                chunk = sock.recv(65536)
                if chunk == b"":
                    break
                raw += chunk
            except (BlockingIOError, OSError):
                pass
            finally:
                sock.setblocking(True)
                sock.settimeout(HANG_TIMEOUT_S)
        if not raw:
            raw = recv_all(sock)
        sock.close()
    except socket.timeout:
        acct("hung")
        fail(f"{what}: no response within {HANG_TIMEOUT_S:.0f}s (hang)")
        return
    except OSError as exc:
        acct("untyped")
        fail(f"{what}: socket error {exc}")
        return
    obj = classify(raw, what=what)
    if obj is not None and obj.get("status") != "error":
        fail(f"{what}: expected a typed error, got {obj}")


def phase_partial(addr, verbose):
    obj = exchange(
        addr,
        http(cost_request(nki=2)),
        what="partial writes",
        chunked=(7, 0.01),
    )
    if obj is not None and obj.get("status") != "ok":
        fail(f"partial: expected typed ok, got {obj}")
    if verbose:
        print("chaos: phase partial done")


def phase_deadline(addr, verbose):
    obj = exchange(addr, http(cost_request(deadline_ms=1)), what="deadline")
    if obj is not None and obj.get("status") == "error":
        kind = obj.get("error")
        if kind not in ("deadline_exceeded", "timeout"):
            fail(f"deadline: expected deadline_exceeded/timeout, got {kind}")
    # a 1ms budget may still win the race on a warm cache hit — a typed
    # ok is acceptable, an untyped anything is not
    if verbose:
        print("chaos: phase deadline done")


# ------------------------------------------------------------------ #
# Shard phases (need --admin)                                         #
# ------------------------------------------------------------------ #


def admin_json(admin, path):
    try:
        sock = socket.create_connection(parse_addr(admin), timeout=8.0)
        sock.settimeout(8.0)
        sock.sendall(f"GET {path} HTTP/1.0\r\n\r\n".encode())
        raw = recv_all(sock)
        sock.close()
    except OSError:
        return None
    parsed = split_response(raw)
    if parsed is None or parsed[0] != 200:
        return None
    try:
        return json.loads(parsed[1].decode())
    except ValueError:
        return None


def shard_states(admin):
    doc = admin_json(admin, "/metrics.json")
    if doc is None or "shards" not in doc:
        return None
    return doc["shards"]


def shard_counter(shard_obj, name):
    try:
        return shard_obj["metrics"]["counters"].get(name, 0)
    except (KeyError, TypeError):
        return 0


def wait_for(pred, timeout_s, interval_s=0.3):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = pred()
        if value:
            return value
        time.sleep(interval_s)
    return None


def phase_sigkill(addr, admin, verbose):
    import os
    import signal

    shards = shard_states(admin)
    if not shards:
        fail("sigkill: cannot read shard states from the admin endpoint")
        return
    # open a streamed explore, kill whichever shard answers it mid-stream
    acct("sent")
    what = "sigkill mid-explore"
    try:
        sock = socket.create_connection(parse_addr(addr), timeout=HANG_TIMEOUT_S)
        sock.settimeout(HANG_TIMEOUT_S)
        sock.sendall(http(explore_request(stream=True, size=16, max_lanes=16)))
        sock.shutdown(socket.SHUT_WR)
        # read until the stream head + at least one frame arrived, then
        # kill every shard pid currently up: one of them owns this stream
        raw = b""
        while b"\r\n\r\n" not in raw or raw.count(b"\n") < 2:
            chunk = sock.recv(4096)
            if not chunk:
                break
            raw += chunk
        victims = [s["pid"] for s in shards if s.get("state") == "up"]
        for pid in victims:
            try:
                os.kill(pid, signal.SIGKILL)
            except OSError:
                pass
        if verbose:
            print(f"chaos: killed shard pid(s) {victims} mid-stream")
        rest = recv_all(sock)  # must EOF promptly, not hang
        sock.close()
        raw += rest
    except socket.timeout:
        acct("hung")
        fail(f"{what}: stream still open {HANG_TIMEOUT_S:.0f}s after SIGKILL")
        return
    except OSError:
        acct("aborted_by_crash")
        raw = b""
    if raw:
        parsed = split_response(raw)
        if parsed is None:
            acct("aborted_by_crash")
        else:
            # every complete frame received before the kill must be JSON
            lines = parsed[1].split(b"\n")
            complete = lines[:-1] if lines and lines[-1] != b"" else lines
            for line in complete:
                if not line:
                    continue
                try:
                    json.loads(line.decode())
                except ValueError:
                    fail(f"{what}: torn/non-JSON frame {line[:80]!r}")
            acct("aborted_by_crash")
    # supervisor must bring the shards back
    recovered = wait_for(
        lambda: all(s.get("state") == "up" for s in (shard_states(admin) or []))
        and bool(shard_states(admin)),
        timeout_s=30.0,
    )
    if not recovered:
        fail("sigkill: shards did not return to state=up within 30s")
        return
    # and the front must answer typed again (the restarted shard or the
    # breaker may answer first — both are typed)
    obj = wait_for(
        lambda: exchange(
            addr, http(cost_request()), what="post-restart", account=False
        ),
        timeout_s=20.0,
        interval_s=0.5,
    )
    if obj is None:
        fail("sigkill: no typed answer after restart")
    else:
        # one accounted exchange against the recovered front
        exchange(addr, http(cost_request()), what="post-restart")
    if verbose:
        print("chaos: phase sigkill done")


def phase_journal(addr, admin, verbose):
    import os
    import signal

    warm = http(cost_request(nki=7))

    def cache_traffic(s):
        return shard_counter(s, "engine.response_cache.hits") + shard_counter(
            s, "engine.response_cache.misses"
        )

    # warm every shard: the kernel balances accepts, so spray until each
    # up shard has served the warm request at least once (a miss inserts
    # it into cache + journal; a hit means a previous run's journal
    # already replayed it — both leave it journaled). Baselines are per
    # pid: a restart resets the shard's counters.
    base = {}

    def all_warm():
        for _ in range(4):
            exchange(addr, warm, what="journal warm", account=False)
        shards = shard_states(admin) or []
        if not shards:
            return False
        served = True
        for s in shards:
            if not s.get("up"):
                return False
            traffic = cache_traffic(s)
            if s["pid"] not in base:
                base[s["pid"]] = traffic
                served = False
            elif traffic <= base[s["pid"]]:
                served = False
        return served

    if not wait_for(all_warm, timeout_s=30.0, interval_s=0.2):
        fail("journal: could not warm every shard's response cache")
        return
    victims = wait_for(
        lambda: [
            s
            for s in (shard_states(admin) or [])
            if s.get("state") == "up" and s.get("up")
        ],
        timeout_s=15.0,
    )
    if not victims:
        fail("journal: no shard up to kill")
        return
    victim = victims[0]
    try:
        os.kill(victim["pid"], signal.SIGKILL)
    except OSError as exc:
        fail(f"journal: cannot kill shard {victim['shard']}: {exc}")
        return
    if verbose:
        print(f"chaos: killed shard {victim['shard']} (pid {victim['pid']})")

    def restarted():
        for s in shard_states(admin) or []:
            if (
                s["shard"] == victim["shard"]
                and s.get("up")
                and s["pid"] != victim["pid"]
                and shard_counter(s, "engine.journal.replayed") >= 1
            ):
                return s
        return None

    fresh = wait_for(restarted, timeout_s=30.0)
    if fresh is None:
        fail("journal: restarted shard did not replay its journal within 30s")
        return
    base_miss = shard_counter(fresh, "engine.response_cache.misses")

    # only the warmed request is in flight now: the restarted shard's
    # first service of it must be a journal-warmed HIT, not a miss
    def hit_on_restarted():
        exchange(addr, warm, what="journal replay probe", account=False)
        for s in shard_states(admin) or []:
            if s["shard"] == victim["shard"] and s.get("up"):
                if shard_counter(s, "engine.response_cache.hits") >= 1:
                    return s
        return None

    served = wait_for(hit_on_restarted, timeout_s=30.0, interval_s=0.2)
    if served is None:
        fail(
            "journal: restarted shard never served the warmed request "
            "from its journaled cache"
        )
        return
    miss_now = shard_counter(served, "engine.response_cache.misses")
    if miss_now > base_miss:
        fail(
            f"journal: restarted shard re-evaluated the warmed request "
            f"(misses {base_miss} -> {miss_now})"
        )
    elif verbose:
        print(
            f"chaos: restarted shard {victim['shard']} served the warmed "
            f"request from the journal (hits="
            f"{shard_counter(served, 'engine.response_cache.hits')}, "
            f"misses={miss_now})"
        )


# ------------------------------------------------------------------ #


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--addr", required=True, help="work address HOST:PORT")
    ap.add_argument("--admin", help="supervisor admin address HOST:PORT")
    ap.add_argument("--seed", type=int, default=42)
    ap.add_argument(
        "--skip",
        default="",
        help="comma-separated phases to skip "
        "(ok,malformed,oversize,truncated,slowloris,partial,deadline,"
        "sigkill,journal)",
    )
    ap.add_argument("--verbose", action="store_true")
    args = ap.parse_args()
    rng = random.Random(args.seed)
    skip = {s.strip() for s in args.skip.split(",") if s.strip()}

    if "ok" not in skip:
        phase_ok(args.addr, args.verbose)
    if "malformed" not in skip:
        phase_malformed(args.addr, rng, args.verbose)
    if "oversize" not in skip:
        phase_oversize(args.addr, args.verbose)
    if "deadline" not in skip:
        phase_deadline(args.addr, args.verbose)
    if "partial" not in skip:
        phase_partial(args.addr, args.verbose)

    # the stall phases each sit out the server's 10s read deadline —
    # run them concurrently so the harness stays fast
    stall = []
    if "truncated" not in skip:
        stall.append(threading.Thread(target=phase_truncated, args=(args.addr,)))
    if "slowloris" not in skip:
        stall.append(threading.Thread(target=phase_slowloris, args=(args.addr,)))
    for t in stall:
        t.start()
    for t in stall:
        t.join()
    if stall and args.verbose:
        print("chaos: stall phases done")

    if args.admin:
        if "sigkill" not in skip:
            phase_sigkill(args.addr, args.admin, args.verbose)
        if "journal" not in skip:
            phase_journal(args.addr, args.admin, args.verbose)

    print(
        "chaos: accounting: "
        + " ".join(f"{k}={v}" for k, v in ACCT.items())
    )
    if ACCT["hung"] or ACCT["untyped"] or FAILURES:
        print(f"chaos: {len(FAILURES)} failure(s)", file=sys.stderr)
        return 1
    print("chaos: clean — every request ended typed or documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
